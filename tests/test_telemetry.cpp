// obs v2 telemetry tests: timeline reconstruction against hand-built
// stage sets, the model-vs-measured drift gauge (calibrated and
// deliberately miscalibrated), the PIMDNN_SLO grammar and rolling window,
// snapshot export (JSON + Prometheus) including under concurrent writers,
// the bench_compare perf-regression harness, and the end-to-end traced
// pipelined runs that tie all of it together.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_compare.hpp"
#include "common/error.hpp"
#include "ebnn/host.hpp"
#include "ebnn/mnist_synth.hpp"
#include "json_min.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "prom_check.hpp"
#include "yolo/detect.hpp"
#include "yolo/network.hpp"

namespace pimdnn {
namespace {

using obs::Lane;
using obs::Metrics;
using obs::SloSpec;
using obs::SloTracker;
using obs::Span;
using obs::Timeline;
using obs::TimelineReport;
using obs::Tracer;

/// RAII guard: every test leaves the process-wide telemetry state clean.
struct TelemetryReset {
  TelemetryReset() { clear(); }
  ~TelemetryReset() { clear(); }
  static void clear() {
    Tracer::instance().disable();
    obs::Exporter::instance().start("", 0);
    SloTracker::instance().clear();
    Metrics::instance().reset();
  }
};

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// ---- timeline reconstruction ------------------------------------------------

/// Two items on separate banks, host+xfer+dpu each. Hand-checked greedy
/// earliest-fit schedule:
///   item0: host [0,1)      xfer(b0) [1,1.5)   dpu(b0) [1.5,3.5)
///   item1: host [1.5,2.5)  xfer(b1) [2.5,3)   dpu(b1) [3,5)
/// (item1's host stage waits for the host lane, which the item0 transfer
/// occupies until 1.5.)
Timeline two_item_timeline() {
  Timeline tl;
  tl.add({Lane::Host, 0, 0, 1.0});
  tl.add({Lane::Xfer, 0, 0, 0.5});
  tl.add({Lane::Dpu, 0, 0, 2.0});
  tl.add({Lane::Host, 0, 1, 1.0});
  tl.add({Lane::Xfer, 1, 1, 0.5});
  tl.add({Lane::Dpu, 1, 1, 2.0});
  return tl;
}

TEST(TimelineTest, HandBuiltScheduleMatchesEarliestFit) {
  const TimelineReport rep = two_item_timeline().report();
  EXPECT_EQ(rep.frames, 2u);
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, 5.0);
  EXPECT_DOUBLE_EQ(rep.serial_seconds, 7.0);
  EXPECT_NEAR(rep.overlap_efficiency(), 1.0 - 5.0 / 7.0, 1e-12);

  ASSERT_EQ(rep.lanes.size(), 4u); // host, link, bank0, bank1
  EXPECT_EQ(rep.lanes[0].name, "host");
  EXPECT_DOUBLE_EQ(rep.lanes[0].busy_seconds, 3.0); // 2 host + 2 xfers
  EXPECT_DOUBLE_EQ(rep.lanes[0].utilization, 0.6);
  EXPECT_EQ(rep.lanes[1].name, "link");
  EXPECT_DOUBLE_EQ(rep.lanes[1].busy_seconds, 1.0);
  EXPECT_EQ(rep.lanes[2].name, "bank0");
  EXPECT_DOUBLE_EQ(rep.lanes[2].busy_seconds, 2.5);
  EXPECT_EQ(rep.lanes[3].name, "bank1");
  EXPECT_DOUBLE_EQ(rep.lanes[3].busy_seconds, 2.5);

  // The host lane (3.0s busy) out-occupies either bank (2.5s each) and
  // its busy time is mostly compute (2.0 > 1.0 transferred), so the run
  // is host-bound by 0.5s.
  EXPECT_EQ(rep.critical_lane, "host");
  EXPECT_DOUBLE_EQ(rep.critical_utilization, 0.6);
  EXPECT_DOUBLE_EQ(rep.critical_margin_seconds, 0.5);

  ASSERT_EQ(rep.per_frame.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.per_frame[0].host_seconds, 1.0);
  EXPECT_DOUBLE_EQ(rep.per_frame[0].xfer_seconds, 0.5);
  EXPECT_DOUBLE_EQ(rep.per_frame[0].dpu_seconds, 2.0);
  EXPECT_DOUBLE_EQ(rep.per_frame[0].latency_seconds, 3.5);
  EXPECT_DOUBLE_EQ(rep.per_frame[1].latency_seconds, 3.5); // 1.5 -> 5.0
}

TEST(TimelineTest, LinkAttributionWhenTransfersDominateHostLane) {
  // Two banks; host compute is negligible next to the transfers, so the
  // host lane is the busiest resource (it carries every transfer, each
  // bank only half of them) and its busy time is transfer-dominated: the
  // PrIM-style verdict must be "link", not "host".
  Timeline tl;
  tl.add({Lane::Host, 0, 0, 0.1});
  tl.add({Lane::Xfer, 0, 0, 2.0});
  tl.add({Lane::Dpu, 0, 0, 0.5});
  tl.add({Lane::Host, 0, 1, 0.1});
  tl.add({Lane::Xfer, 1, 1, 2.0});
  tl.add({Lane::Dpu, 1, 1, 0.5});
  const TimelineReport rep = tl.report();
  EXPECT_EQ(rep.critical_lane, "link");
}

TEST(TimelineTest, TwoInFlightFloorDelaysThirdItem) {
  // item0 holds bank0 until t=2; item2 could start on the idle bank1 at
  // t=1 (after item1) but the double-buffered executors only admit item i
  // once item i-2 retired, so it starts at t=2.
  Timeline tl;
  tl.add({Lane::Dpu, 0, 0, 2.0});
  tl.add({Lane::Dpu, 1, 1, 1.0});
  tl.add({Lane::Dpu, 1, 2, 1.0});
  const TimelineReport rep = tl.report();
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, 3.0);
}

TEST(TimelineTest, FromEventsReadsPipeStageSpans) {
  TelemetryReset guard;
  Tracer::instance().enable(temp_path("tl.json"));
  auto emit = [](const char* lane, unsigned bank, std::size_t item,
                 double seconds) {
    Span sp("pipe.stage", "pipeline");
    sp.str("lane", lane);
    sp.u64("bank", bank);
    sp.u64("item", item);
    sp.f64("seconds", seconds);
  };
  emit("host", 0, 0, 1.0);
  emit("xfer", 0, 0, 0.5);
  emit("dpu", 0, 0, 2.0);
  { Span other("not.a.stage", "pipeline"); } // must be ignored
  emit("host", 0, 1, 1.0);
  emit("xfer", 1, 1, 0.5);
  emit("dpu", 1, 1, 2.0);
  Tracer::instance().disable();

  const Timeline tl =
      Timeline::from_events(Tracer::instance().snapshot());
  ASSERT_EQ(tl.stages(), 6u);
  const TimelineReport rep = tl.report();
  const TimelineReport want = two_item_timeline().report();
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, want.makespan_seconds);
  EXPECT_DOUBLE_EQ(rep.serial_seconds, want.serial_seconds);
  EXPECT_EQ(rep.critical_lane, want.critical_lane);
}

TEST(TimelineTest, FromEventsHonorsSinceCutoff) {
  TelemetryReset guard;
  Tracer::instance().enable(temp_path("tl2.json"));
  {
    Span sp("pipe.stage", "pipeline");
    sp.str("lane", "host");
    sp.u64("item", 0);
    sp.f64("seconds", 1.0);
  }
  const double cutoff = Tracer::instance().now_us();
  {
    Span sp("pipe.stage", "pipeline");
    sp.str("lane", "dpu");
    sp.u64("item", 1);
    sp.f64("seconds", 2.0);
  }
  Tracer::instance().disable();
  const auto events = Tracer::instance().snapshot();
  EXPECT_EQ(Timeline::from_events(events).stages(), 2u);
  const Timeline late = Timeline::from_events(events, cutoff);
  ASSERT_EQ(late.stages(), 1u);
  EXPECT_DOUBLE_EQ(late.report().serial_seconds, 2.0);
}

// ---- drift gauge ------------------------------------------------------------

TEST(DriftTest, CalibratedPredictionShowsNoDrift) {
  TelemetryReset guard;
  const TimelineReport rep = two_item_timeline().report();
  const double pp = obs::record_drift("test", rep, rep.makespan_seconds,
                                      rep.overlap_efficiency());
  EXPECT_NEAR(pp, 0.0, 1e-9);
  auto& m = Metrics::instance();
  EXPECT_EQ(m.counter("obs.drift.samples"), 1u);
  EXPECT_EQ(m.histogram("obs.drift.overlap_pp").count(), 1u);
  EXPECT_NEAR(m.histogram("obs.drift.makespan_pct").max(), 0.0, 1e-9);
  // The measured utilizations were published for the snapshot.
  EXPECT_EQ(m.histogram("timeline.test.util.host").count(), 1u);
  EXPECT_EQ(m.histogram("timeline.test.overlap").count(), 1u);
}

TEST(DriftTest, MiscalibratedPredictionShowsNonzeroDrift) {
  TelemetryReset guard;
  const TimelineReport rep = two_item_timeline().report();
  // Deliberately miscalibrated model: promises 30pp more overlap and a
  // makespan 20% shorter than the reconstruction measured.
  const double pp = obs::record_drift(
      "test", rep, rep.makespan_seconds * 0.8,
      rep.overlap_efficiency() + 0.30);
  EXPECT_NEAR(pp, 30.0, 1e-9);
  auto& m = Metrics::instance();
  EXPECT_NEAR(m.histogram("obs.drift.overlap_pp").max(), 30.0, 1e-9);
  EXPECT_NEAR(m.histogram("obs.drift.makespan_pct").max(), 25.0, 1e-6);
}

// ---- SLO grammar ------------------------------------------------------------

TEST(SloSpecTest, ParsesTargetsAndRoundTrips) {
  const SloSpec spec = SloSpec::parse("p99<8ms,p50<2ms");
  ASSERT_EQ(spec.targets.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.targets[0].quantile, 0.99);
  EXPECT_DOUBLE_EQ(spec.targets[0].threshold_ms, 8.0);
  EXPECT_DOUBLE_EQ(spec.targets[1].quantile, 0.50);
  EXPECT_DOUBLE_EQ(spec.targets[1].threshold_ms, 2.0);

  // Units: us and s normalize to ms; fractional quantiles survive.
  const SloSpec units = SloSpec::parse("p99.9<250us,p95<1s");
  EXPECT_DOUBLE_EQ(units.targets[0].quantile, 0.999);
  EXPECT_DOUBLE_EQ(units.targets[0].threshold_ms, 0.25);
  EXPECT_DOUBLE_EQ(units.targets[1].threshold_ms, 1000.0);

  // to_string round-trips through parse for both specs.
  for (const SloSpec* s : {&spec, &units}) {
    const SloSpec again = SloSpec::parse(s->to_string());
    ASSERT_EQ(again.targets.size(), s->targets.size());
    for (std::size_t i = 0; i < s->targets.size(); ++i) {
      EXPECT_DOUBLE_EQ(again.targets[i].quantile, s->targets[i].quantile);
      EXPECT_DOUBLE_EQ(again.targets[i].threshold_ms,
                       s->targets[i].threshold_ms);
    }
  }
}

TEST(SloSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "p99", "p99<", "<8ms", "q99<8ms", "p0<8ms", "p100<8ms",
        "p-5<8ms", "p99<-8ms", "p99<0ms", "p99<8parsecs", "p99<8ms,",
        "p99<8ms,,p50<2ms", "99<8ms"}) {
    EXPECT_THROW(SloSpec::parse(bad), ConfigError) << "accepted: " << bad;
  }
}

// ---- SLO rolling window -----------------------------------------------------

TEST(SloTrackerTest, WindowedQuantilesBreachesAndExpiry) {
  TelemetryReset guard;
  auto& t = SloTracker::instance();
  t.configure(SloSpec::parse("p99<10ms"), /*window_ms=*/1000,
              /*buckets=*/4);
  ASSERT_TRUE(SloTracker::enabled());

  const std::uint64_t now = 1'000'000;
  for (int i = 0; i < 100; ++i) {
    t.record_at("svc", 5.0, now);
  }
  auto st = t.status_at(now);
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].signature, "svc");
  EXPECT_EQ(st[0].samples, 100u);
  EXPECT_EQ(st[0].breaches, 0u);
  EXPECT_LT(st[0].current_ms, 10.0);
  EXPECT_FALSE(st[0].violated);

  // A burst of slow requests: each one over threshold counts a breach,
  // and the windowed p99 crosses the target.
  for (int i = 0; i < 50; ++i) {
    t.record_at("svc", 50.0, now + 100);
  }
  st = t.status_at(now + 100);
  EXPECT_EQ(st[0].samples, 150u);
  EXPECT_EQ(st[0].breaches, 50u);
  EXPECT_GT(st[0].current_ms, 10.0);
  EXPECT_TRUE(st[0].violated);

  // Two window-widths later every bucket expired: the live window is
  // empty and the violation clears (breach totals are cumulative).
  st = t.status_at(now + 3000);
  EXPECT_EQ(st[0].samples, 0u);
  EXPECT_EQ(st[0].breaches, 50u);
  EXPECT_FALSE(st[0].violated);

  // New traffic lands in fresh buckets, untainted by the old burst.
  t.record_at("svc", 1.0, now + 3000);
  st = t.status_at(now + 3000);
  EXPECT_EQ(st[0].samples, 1u);
  EXPECT_FALSE(st[0].violated);
}

TEST(SloTrackerTest, PartialExpiryDropsOldestBucketFirst) {
  TelemetryReset guard;
  auto& t = SloTracker::instance();
  t.configure(SloSpec::parse("p50<10ms"), 1000, 4); // 250ms buckets
  const std::uint64_t now = 2'000'000;
  t.record_at("svc", 100.0, now);       // bucket k
  t.record_at("svc", 1.0, now + 750);   // bucket k+3 (same window)
  auto st = t.status_at(now + 750);
  EXPECT_EQ(st[0].samples, 2u);
  // One bucket-width later the old sample ages out, the new one stays.
  st = t.status_at(now + 1000);
  EXPECT_EQ(st[0].samples, 1u);
  EXPECT_LT(st[0].current_ms, 10.0);
}

TEST(SloTrackerTest, DisabledRecordIsANoOp) {
  TelemetryReset guard;
  EXPECT_FALSE(SloTracker::enabled());
  SloTracker::instance().record("svc", 1.0); // must not create state
  EXPECT_TRUE(SloTracker::instance().status().empty());
  EXPECT_TRUE(SloTracker::instance().spec().targets.empty());
}

TEST(SloTrackerTest, MultiTargetMultiSignature) {
  TelemetryReset guard;
  auto& t = SloTracker::instance();
  t.configure(SloSpec::parse("p99<10ms,p50<2ms"), 1000, 4);
  const std::uint64_t now = 3'000'000;
  t.record_at("a", 1.0, now);
  t.record_at("b", 5.0, now);
  const auto st = t.status_at(now);
  ASSERT_EQ(st.size(), 4u); // 2 signatures x 2 targets
  // "a" (1ms) satisfies both targets; "b" (5ms) breaks only p50<2ms.
  for (const auto& s : st) {
    const bool want_violated =
        s.signature == "b" && s.target.threshold_ms == 2.0;
    EXPECT_EQ(s.violated, want_violated)
        << s.signature << " " << s.target.to_string();
  }
}

// ---- snapshot + exporters ---------------------------------------------------

TEST(SnapshotTest, JsonRoundTripsThroughParser) {
  TelemetryReset guard;
  auto& m = Metrics::instance();
  m.add("test.count", 7);
  for (int i = 1; i <= 10; ++i) m.record("test.lat", i);
  obs::OffloadSample s;
  s.wall_cycles = 1000;
  s.host_seconds = 0.25;
  s.bytes_to_dpu = 2048;
  m.record_offload("conv/3x3\"quoted\"", s);
  SloTracker::instance().configure(SloSpec::parse("p99<10ms"), 1000, 4);
  SloTracker::instance().record("svc", 5.0);

  std::ostringstream os;
  obs::write_snapshot_json(os, obs::snapshot());
  const tools::Json j = tools::parse_json(os.str());
  EXPECT_EQ(j.num_or("schema_version", -1), obs::kSchemaVersion);
  const tools::Json* counters = j.get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->num_or("test.count", -1), 7);
  const tools::Json* hist = j.get("histograms");
  ASSERT_NE(hist, nullptr);
  const tools::Json* lat = hist->get("test.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->num_or("count", -1), 10);
  EXPECT_DOUBLE_EQ(lat->num_or("min", -1), 1.0);
  EXPECT_DOUBLE_EQ(lat->num_or("max", -1), 10.0);
  const tools::Json* sigs = j.get("signatures");
  ASSERT_NE(sigs, nullptr);
  ASSERT_EQ(sigs->items.size(), 1u);
  EXPECT_EQ(sigs->items[0].str_or("signature", ""), "conv/3x3\"quoted\"");
  EXPECT_EQ(sigs->items[0].num_or("launches", -1), 1);
  const tools::Json* slos = j.get("slos");
  ASSERT_NE(slos, nullptr);
  ASSERT_EQ(slos->items.size(), 1u);
  EXPECT_EQ(slos->items[0].str_or("signature", ""), "svc");
}

TEST(SnapshotTest, PrometheusExpositionValidates) {
  TelemetryReset guard;
  auto& m = Metrics::instance();
  m.add("pool.resident.hit", 3);
  m.record("offload.latency", 1.5);
  obs::OffloadSample s;
  s.wall_cycles = 500;
  s.bytes_from_dpu = 64;
  m.record_offload("gemm 16x16 \"odd\\name\"\n", s); // needs escaping
  SloTracker::instance().configure(SloSpec::parse("p99<10ms"), 1000, 4);
  SloTracker::instance().record("svc", 20.0); // violated

  std::ostringstream os;
  obs::write_snapshot_prometheus(os, obs::snapshot());
  const std::string text = os.str();
  const tools::PromCheckResult r = tools::prom_check(text);
  for (const auto& e : r.errors) ADD_FAILURE() << e;
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.samples, 5u);
  EXPECT_NE(text.find("pimdnn_schema_version 1"), std::string::npos);
  EXPECT_NE(text.find("pimdnn_pool_resident_hit_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("pimdnn_slo_violated"), std::string::npos);
  // The escaped signature survives as a quoted label value.
  EXPECT_NE(text.find("\\\"odd\\\\name\\\"\\n"), std::string::npos);
}

TEST(ExporterTest, ManualFlushWritesParseableJson) {
  TelemetryReset guard;
  Metrics::instance().add("flush.me", 11);
  const std::string path = temp_path("snap.json");
  auto& ex = obs::Exporter::instance();
  ex.start(path, 0); // no background thread
  EXPECT_EQ(ex.path(), path);
  ASSERT_TRUE(ex.flush());
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  const tools::Json j = tools::parse_json(buf.str());
  EXPECT_EQ(j.num_or("schema_version", -1), obs::kSchemaVersion);
  EXPECT_EQ(j.get("counters")->num_or("flush.me", -1), 11);
  std::remove(path.c_str());
}

TEST(ExporterTest, BackgroundThreadFlushesAndStopsCleanly) {
  TelemetryReset guard;
  Metrics::instance().add("bg.count", 1);
  const std::string path = temp_path("snap.prom");
  auto& ex = obs::Exporter::instance();
  ex.start(path, 5);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ex.writes() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(ex.writes(), 0u) << "background flusher never wrote";
  ex.stop(); // also writes one final snapshot

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  const tools::PromCheckResult r = tools::prom_check(buf.str());
  for (const auto& e : r.errors) ADD_FAILURE() << e;
  EXPECT_TRUE(r.ok);
  std::remove(path.c_str());
}

TEST(SnapshotTest, ConsistentUnderConcurrentWriters) {
  TelemetryReset guard;
  SloTracker::instance().configure(SloSpec::parse("p99<10ms"), 1000, 4);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&go, w] {
      while (!go.load()) {}
      auto& m = Metrics::instance();
      for (int i = 0; i < kIters; ++i) {
        m.add("stress.count");
        m.record("stress.lat", (w * kIters + i) % 17 + 1);
        obs::OffloadSample s;
        s.wall_cycles = 100 + i;
        m.record_offload("stress.sig" + std::to_string(w), s);
        SloTracker::instance().record("stress", 5.0);
      }
    });
  }
  go.store(true);
  // Snapshot + serialize continuously while the writers hammer away; the
  // snapshots must be internally parseable every time (no torn state).
  for (int i = 0; i < 50; ++i) {
    const obs::Snapshot snap = obs::snapshot();
    std::ostringstream js;
    obs::write_snapshot_json(js, snap);
    EXPECT_NO_THROW(tools::parse_json(js.str())) << "iteration " << i;
    std::ostringstream prom;
    obs::write_snapshot_prometheus(prom, snap);
    EXPECT_TRUE(tools::prom_check(prom.str()).ok) << "iteration " << i;
  }
  for (auto& t : writers) t.join();

  const obs::Snapshot final_snap = obs::snapshot();
  EXPECT_EQ(final_snap.counters.at("stress.count"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(final_snap.histograms.at("stress.lat").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(final_snap.signatures.at("stress.sig" + std::to_string(w))
                  .launches,
              static_cast<std::uint64_t>(kIters));
  }
}

// ---- bench_compare ----------------------------------------------------------

tools::CompareResult run_compare(const std::string& baseline,
                                 const std::string& fresh) {
  return tools::compare_reports(tools::parse_json(baseline),
                                tools::parse_json(fresh));
}

TEST(BenchCompareTest, PassesWhenWithinTolerances) {
  const auto r = run_compare(
      R"({"schema_version":1,"bench":"b","metrics":[
           {"name":"bit_identical","value":1},
           {"name":"speedup","value":1.9,"min":1.3},
           {"name":"frame_ms","value":100,"tol_rel":0.5},
           {"name":"wall_s","value":4.2,"skip":true}]})",
      R"({"schema_version":1,"bench":"b","metrics":[
           {"name":"bit_identical","value":1,"unit":""},
           {"name":"speedup","value":2.1,"unit":"x"},
           {"name":"frame_ms","value":140,"unit":"ms"},
           {"name":"wall_s","value":9000,"unit":"s"},
           {"name":"brand_new","value":3,"unit":""}]})");
  EXPECT_TRUE(r.ok) << [&] {
    std::ostringstream os;
    tools::print_compare(os, r);
    return os.str();
  }();
  EXPECT_EQ(r.failures(), 0u);
  ASSERT_EQ(r.extra.size(), 1u); // informational, not a failure
  EXPECT_EQ(r.extra[0], "brand_new");
}

TEST(BenchCompareTest, FailsReadablyOnPerturbation) {
  const auto r = run_compare(
      R"({"schema_version":1,"bench":"b","metrics":[
           {"name":"bit_identical","value":1},
           {"name":"speedup","value":1.9,"min":1.3},
           {"name":"frame_ms","value":100,"tol_rel":0.1},
           {"name":"gone","value":5}]})",
      R"({"schema_version":1,"bench":"b","metrics":[
           {"name":"bit_identical","value":0},
           {"name":"speedup","value":1.1},
           {"name":"frame_ms","value":150}]})");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failures(), 4u); // exact, min-bound, tolerance, missing
  std::ostringstream os;
  tools::print_compare(os, r);
  const std::string report = os.str();
  EXPECT_NE(report.find("[FAIL] bit_identical"), std::string::npos);
  EXPECT_NE(report.find("[FAIL] speedup"), std::string::npos);
  EXPECT_NE(report.find("[FAIL] frame_ms"), std::string::npos);
  EXPECT_NE(report.find("missing from fresh run"), std::string::npos);
  EXPECT_NE(report.find("bench_compare: FAIL"), std::string::npos);
}

TEST(BenchCompareTest, RefusesSchemaAndBenchMismatch) {
  const auto schema = run_compare(
      R"({"schema_version":1,"bench":"b","metrics":[]})",
      R"({"schema_version":2,"bench":"b","metrics":[]})");
  EXPECT_FALSE(schema.ok);
  EXPECT_NE(schema.error.find("schema_version mismatch"),
            std::string::npos);
  const auto bench = run_compare(
      R"({"schema_version":1,"bench":"a","metrics":[]})",
      R"({"schema_version":1,"bench":"b","metrics":[]})");
  EXPECT_FALSE(bench.ok);
  EXPECT_NE(bench.error.find("bench name mismatch"), std::string::npos);
}

TEST(PromCheckTest, RejectsMalformedExposition) {
  EXPECT_FALSE(tools::prom_check("").ok);
  // Valid samples but no schema_version gauge.
  EXPECT_FALSE(tools::prom_check("pimdnn_x_total 1\n").ok);
  // Bad metric name.
  EXPECT_FALSE(
      tools::prom_check("1bad 1\npimdnn_schema_version 1\n").ok);
  // Unquoted label value.
  EXPECT_FALSE(tools::prom_check(
                   "x{sig=oops} 1\npimdnn_schema_version 1\n")
                   .ok);
  // Non-numeric sample value.
  EXPECT_FALSE(tools::prom_check(
                   "x banana\npimdnn_schema_version 1\n")
                   .ok);
  // And the straightforward valid case.
  EXPECT_TRUE(tools::prom_check("# TYPE x counter\n"
                                "x_total{sig=\"a b\"} 42\n"
                                "pimdnn_schema_version 1\n")
                  .ok);
}

// ---- disabled-path cost -----------------------------------------------------

TEST(DisabledPathTest, NoTelemetryStateWithoutOptIn) {
  TelemetryReset guard;
  ASSERT_FALSE(Tracer::enabled());
  ASSERT_FALSE(SloTracker::enabled());
  {
    Span sp("pipe.stage", "pipeline"); // the span sites' disabled path
    EXPECT_FALSE(sp.active());
  }
  SloTracker::instance().record("svc", 1.0);
  Tracer::instance().enable(temp_path("empty.json"));
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
  EXPECT_TRUE(SloTracker::instance().status().empty());
}

// ---- end-to-end: traced pipelined runs --------------------------------------

TEST(TelemetryEndToEnd, TracedYoloPipelineReportsTimelineAndDrift) {
  TelemetryReset guard;
  Tracer::instance().enable(temp_path("yolo_e2e.json"));
  SloTracker::instance().configure(SloSpec::parse("p99<60000ms"), 10000,
                                   8);

  const auto defs = yolo::yolov3_lite_config(1, 1);
  const auto w = yolo::YoloWeights::random(defs, 3, 77);
  yolo::YoloRunner runner(defs, w, 3, 64, 64);
  std::vector<std::vector<std::int16_t>> frames;
  for (int i = 0; i < 4; ++i) {
    frames.push_back(yolo::make_synthetic_image(
        3, 64, 64, 5, 100 + static_cast<unsigned>(i)));
  }
  yolo::RunOptions opts;
  opts.mode = yolo::ExecMode::DpuWram;
  opts.n_tasklets = 8;
  const auto piped = runner.run_pipelined(frames, opts);
  Tracer::instance().disable();

  // The traced run carries a reconstructed timeline with per-lane
  // utilization and critical-path attribution.
  ASSERT_TRUE(piped.timeline.has_value());
  const TimelineReport& tl = *piped.timeline;
  EXPECT_EQ(tl.frames, frames.size());
  ASSERT_GE(tl.lanes.size(), 3u); // host, link, >=1 bank
  EXPECT_FALSE(tl.critical_lane.empty());
  EXPECT_GT(tl.critical_utilization, 0.0);
  for (const auto& lane : tl.lanes) {
    EXPECT_GE(lane.utilization, 0.0);
    EXPECT_LE(lane.utilization, 1.0 + 1e-9) << lane.name;
  }

  // Reconstruction vs the PipelineModel prediction: both replay the same
  // stage durations through the same greedy fit, so measured overlap must
  // land within a few points of predicted and the drift gauge stays low.
  EXPECT_NEAR(tl.overlap_efficiency(),
              piped.pipeline.overlap_efficiency(), 0.05);
  EXPECT_NEAR(tl.makespan_seconds, piped.pipeline.makespan_seconds,
              piped.pipeline.makespan_seconds * 0.05);
  auto& m = Metrics::instance();
  EXPECT_GE(m.counter("obs.drift.samples"), 1u);
  EXPECT_LT(m.histogram("obs.drift.overlap_pp").max(), 5.0);
  EXPECT_GT(m.histogram("timeline.yolo.util.host").count(), 0u);

  // Every frame latency landed in the SLO window under "yolo.frame".
  const auto st = SloTracker::instance().status();
  ASSERT_FALSE(st.empty());
  bool found = false;
  for (const auto& s : st) {
    if (s.signature == "yolo.frame") {
      found = true;
      EXPECT_EQ(s.samples, frames.size());
      EXPECT_FALSE(s.violated); // threshold deliberately generous
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryEndToEnd, TracedEbnnPipelineReportsTimeline) {
  TelemetryReset guard;
  Tracer::instance().enable(temp_path("ebnn_e2e.json"));

  const ebnn::EbnnConfig cfg;
  const auto weights = ebnn::EbnnWeights::random(cfg, 42);
  const auto images = ebnn::images_only(ebnn::make_synthetic_mnist(48, 11));
  std::vector<std::vector<ebnn::Image>> batches(3);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    batches[b].assign(images.begin() + static_cast<long>(b) * 16,
                      images.begin() + static_cast<long>(b + 1) * 16);
  }
  ebnn::EbnnHost host(cfg, weights, ebnn::BnMode::HostLut);
  const auto piped = host.run_pipelined(batches, 16);
  Tracer::instance().disable();

  ASSERT_TRUE(piped.timeline.has_value());
  EXPECT_EQ(piped.timeline->frames, batches.size());
  EXPECT_NEAR(piped.timeline->overlap_efficiency(),
              piped.pipeline.overlap_efficiency(), 0.05);
  EXPECT_GT(
      Metrics::instance().histogram("timeline.ebnn.overlap").count(), 0u);
}

TEST(TelemetryEndToEnd, UntracedPipelineSkipsTimeline) {
  TelemetryReset guard;
  ASSERT_FALSE(Tracer::enabled());
  const ebnn::EbnnConfig cfg;
  const auto weights = ebnn::EbnnWeights::random(cfg, 42);
  const auto images = ebnn::images_only(ebnn::make_synthetic_mnist(32, 11));
  std::vector<std::vector<ebnn::Image>> batches(2);
  batches[0].assign(images.begin(), images.begin() + 16);
  batches[1].assign(images.begin() + 16, images.end());
  ebnn::EbnnHost host(cfg, weights, ebnn::BnMode::HostLut);
  const auto piped = host.run_pipelined(batches, 16);
  EXPECT_FALSE(piped.timeline.has_value());
  EXPECT_EQ(Metrics::instance().counter("obs.drift.samples"), 0u);
}

} // namespace
} // namespace pimdnn
