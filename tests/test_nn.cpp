// Unit tests for the NN substrate: tensors, GEMM (float + Algorithm 2
// quantized), im2col, layers, bit packing, quantization.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/bitpack.hpp"
#include "nn/gemm.hpp"
#include "nn/im2col.hpp"
#include "nn/layers.hpp"
#include "nn/quantize.hpp"
#include "nn/alexnet.hpp"
#include "nn/tensor.hpp"

namespace pimdnn::nn {
namespace {

TEST(Shape, NumelAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_THROW(s.dim(3), UsageError);
  EXPECT_THROW(Shape({0, 2}), UsageError);
}

TEST(Tensor, FlatAndMultiDimAccess) {
  Tensor<int> t(Shape{2, 3});
  t.at(1, 2) = 42;
  EXPECT_EQ(t[5], 42);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_THROW(t[6], UsageError);
  t.fill(7);
  EXPECT_EQ(t.at(0, 0), 7);
}

TEST(Tensor, ChwAccess) {
  Tensor<float> t(Shape{2, 4, 5});
  t.at(1, 3, 4) = 2.5f;
  EXPECT_EQ(t[1 * 20 + 3 * 5 + 4], 2.5f);
}

TEST(Gemm, FloatIdentity) {
  // A = I2, so C = alpha * B.
  const std::vector<float> a = {1, 0, 0, 1};
  const std::vector<float> b = {1, 2, 3, 4, 5, 6};
  std::vector<float> c(6, 0.0f);
  gemm_f32_reference(2, 3, 2, 2.0f, a, b, c);
  for (int i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(c[i], 2.0f * b[i]);
  }
}

TEST(Gemm, FloatAccumulatesIntoC) {
  const std::vector<float> a = {1};
  const std::vector<float> b = {3};
  std::vector<float> c = {10};
  gemm_f32_reference(1, 1, 1, 1.0f, a, b, c);
  EXPECT_FLOAT_EQ(c[0], 13.0f); // Darknet semantics: +=
}

TEST(Gemm, RejectsUndersizedBuffers) {
  std::vector<float> a(1), b(1), c(0);
  EXPECT_THROW(gemm_f32_reference(1, 1, 1, 1.0f, a, b, c), UsageError);
}

TEST(Gemm, QuantizedMatchesManualComputation) {
  // 1x1x2: ctmp = alpha*a0*b0 + alpha*a1*b1 = 1*(2*3 + 4*5) = 26;
  // C = 26/32 = 0.
  const std::vector<std::int16_t> a = {2, 4};
  const std::vector<std::int16_t> b = {3, 5};
  std::vector<std::int16_t> c(1, -1);
  gemm_q16_reference(1, 1, 2, 1, a, b, c);
  EXPECT_EQ(c[0], 0);
  // With alpha=16: ctmp = 16*26 = 416; 416/32 = 13.
  gemm_q16_reference(1, 1, 2, 16, a, b, c);
  EXPECT_EQ(c[0], 13);
}

TEST(Gemm, QuantizedClampsAtLimit) {
  // ctmp = 2*1000*1000 = 2e6 (no int32 overflow); /32 = 62500 -> clamp.
  const std::vector<std::int16_t> a = {1000};
  const std::vector<std::int16_t> b = {1000};
  std::vector<std::int16_t> c(1, 0);
  gemm_q16_reference(1, 1, 1, 2, a, b, c);
  EXPECT_EQ(c[0], 32767);
  const std::vector<std::int16_t> an = {-1000};
  gemm_q16_reference(1, 1, 1, 2, an, b, c);
  EXPECT_EQ(c[0], -32767);
}

TEST(Gemm, RowDecompositionEqualsFullGemm) {
  // The row-per-DPU unrolling (Figure 4.6) must equal the full GEMM.
  Rng rng(55);
  const int m = 7, n = 13, k = 9;
  std::vector<std::int16_t> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-50, 50));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-50, 50));
  std::vector<std::int16_t> full(m * n), rows(m * n);
  gemm_q16_reference(m, n, k, 3, a, b, full);
  for (int i = 0; i < m; ++i) {
    gemm_q16_row_reference(i, n, k, 3,
                           std::span<const std::int16_t>(a).subspan(i * k, k),
                           b, std::span<std::int16_t>(rows).subspan(i * n, n));
  }
  EXPECT_EQ(full, rows);
}

TEST(Im2col, GeometryDerivations) {
  ConvGeom g{3, 8, 8, 16, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 8);
  EXPECT_EQ(g.out_w(), 8);
  EXPECT_EQ(g.gemm_m(), 16);
  EXPECT_EQ(g.gemm_k(), 27);
  EXPECT_EQ(g.gemm_n(), 64);
  EXPECT_EQ(g.macs(), 16 * 27 * 64);
  ConvGeom s{3, 8, 8, 4, 3, 2, 1};
  EXPECT_EQ(s.out_h(), 4);
}

TEST(Im2col, ValuesLandInExpectedCells) {
  // 1x3x3 input, 2x2 kernel, stride 1, no pad: K=4, N=4.
  ConvGeom g{1, 3, 3, 1, 2, 1, 0};
  std::vector<int> in = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> out(g.gemm_k() * g.gemm_n());
  im2col<int>(g, in, out);
  // Row 0 = kernel tap (0,0): the 2x2 top-left corners: 1,2,4,5.
  EXPECT_EQ((std::vector<int>{out[0], out[1], out[2], out[3]}),
            (std::vector<int>{1, 2, 4, 5}));
  // Row 3 = tap (1,1): 5,6,8,9.
  EXPECT_EQ((std::vector<int>{out[12], out[13], out[14], out[15]}),
            (std::vector<int>{5, 6, 8, 9}));
}

TEST(Im2col, ZeroPaddingProducesZeros) {
  ConvGeom g{1, 2, 2, 1, 3, 1, 1};
  std::vector<int> in = {1, 2, 3, 4};
  std::vector<int> out(g.gemm_k() * g.gemm_n());
  im2col<int>(g, in, out);
  // Tap (0,0) of output (0,0) reads input (-1,-1) -> 0.
  EXPECT_EQ(out[0], 0);
}

TEST(Conv2dF32, MatchesDirectConvolution) {
  Rng rng(66);
  ConvGeom g{2, 6, 6, 3, 3, 1, 1};
  std::vector<float> in(g.in_c * g.in_h * g.in_w);
  std::vector<float> w(g.out_c * g.gemm_k());
  std::vector<float> bias(g.out_c);
  for (auto& v : in) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : bias) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> out(g.out_c * g.out_h() * g.out_w());
  conv2d_f32(g, in, w, bias, out);

  // Direct nested-loop convolution.
  for (int oc = 0; oc < g.out_c; ++oc) {
    for (int oy = 0; oy < g.out_h(); ++oy) {
      for (int ox = 0; ox < g.out_w(); ++ox) {
        float acc = bias[oc];
        for (int ic = 0; ic < g.in_c; ++ic) {
          for (int ky = 0; ky < g.ksize; ++ky) {
            for (int kx = 0; kx < g.ksize; ++kx) {
              const int iy = oy * g.stride + ky - g.pad;
              const int ix = ox * g.stride + kx - g.pad;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) continue;
              acc += w[((oc * g.in_c + ic) * g.ksize + ky) * g.ksize + kx] *
                     in[(ic * g.in_h + iy) * g.in_w + ix];
            }
          }
        }
        EXPECT_NEAR(out[(oc * g.out_h() + oy) * g.out_w() + ox], acc, 1e-4f);
      }
    }
  }
}

TEST(MaxPool, PicksWindowMaxima) {
  std::vector<int> in = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  std::vector<int> out(4);
  maxpool2d<int>(1, 4, 4, 2, 2, in, out);
  EXPECT_EQ(out, (std::vector<int>{6, 8, 14, 16}));
}

TEST(MaxPool, HandlesNegatives) {
  std::vector<int> in = {-9, -5, -7, -3};
  std::vector<int> out(1);
  maxpool2d<int>(1, 2, 2, 2, 2, in, out);
  EXPECT_EQ(out[0], -3);
}

TEST(BatchNorm, ApplyMatchesFormula) {
  BatchNormParams bn;
  bn.w0 = {1.0f};
  bn.w1 = {2.0f};
  bn.w2 = {4.0f};
  bn.w3 = {3.0f};
  bn.w4 = {0.5f};
  // ((x + 1 - 2) / 4) * 3 + 0.5 at x=5 -> (4/4)*3+0.5 = 3.5.
  EXPECT_FLOAT_EQ(bn.apply(5.0f, 0), 3.5f);
  EXPECT_EQ(binact(3.5f), 1);
  EXPECT_EQ(binact(-0.1f), 0);
  EXPECT_EQ(binact(0.0f), 1);
}

TEST(Softmax, NormalizesAndOrders) {
  std::vector<float> logits = {1.0f, 3.0f, 2.0f};
  std::vector<float> probs(3);
  softmax(logits, probs);
  float sum = 0.0f;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(probs[1], probs[2]);
  EXPECT_GT(probs[2], probs[0]);
  EXPECT_EQ(argmax(probs), 1u);
}

TEST(Softmax, StableForLargeLogits) {
  std::vector<float> logits = {1000.0f, 1001.0f};
  std::vector<float> probs(2);
  softmax(logits, probs);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-6f);
}

TEST(Upsample, NearestNeighbor2x) {
  std::vector<int> in = {1, 2, 3, 4};
  std::vector<int> out(16);
  upsample2x<int>(1, 2, 2, in, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[3], 2);
  EXPECT_EQ(out[15], 4);
}

TEST(Shortcut, SaturatingAdd) {
  const std::vector<std::int16_t> a = {30000, -30000, 5};
  const std::vector<std::int16_t> b = {10000, -10000, 6};
  std::vector<std::int16_t> out(3);
  shortcut_q16(a, b, out);
  EXPECT_EQ(out[0], 32767);
  EXPECT_EQ(out[1], -32767);
  EXPECT_EQ(out[2], 11);
}

TEST(LeakyRelu, PowerOfTwoSlope) {
  std::vector<std::int16_t> x = {-80, -7, 0, 5};
  leaky_relu_q16(x);
  EXPECT_EQ(x[0], -10);
  EXPECT_EQ(x[1], 0); // -7/8 truncates toward zero
  EXPECT_EQ(x[2], 0);
  EXPECT_EQ(x[3], 5);
}

TEST(Bitpack, SignsRoundTrip) {
  const std::vector<float> vals = {1.0f, -2.0f, 0.0f, -0.5f, 3.0f};
  const auto packed = bitpack_signs(vals);
  EXPECT_EQ(bit_at(packed, 0), 1);
  EXPECT_EQ(bit_at(packed, 1), 0);
  EXPECT_EQ(bit_at(packed, 2), 1); // 0.0 >= 0
  EXPECT_EQ(bit_at(packed, 3), 0);
  EXPECT_EQ(bit_at(packed, 4), 1);
}

TEST(Bitpack, CrossWordBoundary) {
  std::vector<int> bits(40, 0);
  bits[31] = 1;
  bits[32] = 1;
  bits[39] = 1;
  const auto packed = bitpack_bits(bits);
  ASSERT_EQ(packed.size(), 2u);
  EXPECT_EQ(bit_at(packed, 31), 1);
  EXPECT_EQ(bit_at(packed, 32), 1);
  EXPECT_EQ(bit_at(packed, 39), 1);
  EXPECT_EQ(bit_at(packed, 38), 0);
}

TEST(Bitpack, BinaryDotMatchesScalar) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.next_u32() % 70;
    std::vector<int> abits(n), bbits(n);
    for (auto& v : abits) v = static_cast<int>(rng.next_u32() & 1);
    for (auto& v : bbits) v = static_cast<int>(rng.next_u32() & 1);
    std::int32_t expect = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expect += abits[i] == bbits[i] ? 1 : -1;
    }
    const auto pa = bitpack_bits(abits);
    const auto pb = bitpack_bits(bbits);
    EXPECT_EQ(binary_dot(pa, pb, n), expect) << "n=" << n;
  }
}

TEST(Quantize, RoundTripWithinOneLsb) {
  Rng rng(88);
  std::vector<float> x(100);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-100, 100));
  const auto q = quantize_i16(x, 7);
  const auto back = dequantize_i16(q, 7);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1.0f / 128.0f + 1e-6f);
  }
}

TEST(Quantize, ChooseFracBitsFitsRange) {
  std::vector<float> small = {0.1f, -0.2f};
  EXPECT_EQ(choose_frac_bits_i16(small), 14);
  std::vector<float> big = {1000.0f};
  const int bits = choose_frac_bits_i16(big);
  EXPECT_LE(1000.0f * (1 << bits), 32767.0f * 2.0f);
  const auto q = quantize_i16(big, bits);
  EXPECT_LT(std::abs(static_cast<int>(q[0])), 32768);
}

TEST(Alexnet, LayerGeometryAndMacs) {
  const auto layers = alexnet_layers();
  ASSERT_EQ(layers.size(), 8u);
  // conv1: 96 filters, 11x11/4 on 227x227x3 -> 55x55 output, 105.4 M MACs.
  EXPECT_EQ(layers[0].geom.out_h(), 55);
  EXPECT_EQ(layers[0].geom.macs(), 105415200);
  // conv2 on the pooled 27x27x96 map (ungrouped): 447.9 M MACs.
  EXPECT_EQ(layers[1].geom.out_h(), 27);
  EXPECT_EQ(layers[1].geom.macs(), 447897600);
  // fc6: 9216 x 4096.
  EXPECT_FALSE(layers[5].is_conv);
  EXPECT_EQ(layers[5].macs(), 9216 * 4096);
  // Total ~1.14 G MACs ungrouped (the 2-GPU grouped original halves
  // conv2/4/5 to ~0.72 G; the thesis' 2.59e9 "TOPs" counts finer-grained
  // primitive operations).
  EXPECT_GT(alexnet_macs(), 1.0e9);
  EXPECT_LT(alexnet_macs(), 1.25e9);
}

TEST(Quantize, I8Saturation) {
  std::vector<float> x = {100.0f, -100.0f};
  const auto q = quantize_i8(x, 5);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], -128);
}

} // namespace
} // namespace pimdnn::nn
