// Unit tests for the DPU simulator: memories, cost model, DMA accounting,
// pipeline timing formula, perfcounter, subroutine profile.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "sim/cost_model.hpp"
#include "sim/dpu.hpp"
#include "sim/memory.hpp"

namespace pimdnn::sim {
namespace {

TEST(Memory, WramReadWriteRoundTrip) {
  Wram w(1024);
  const std::uint32_t v = 0xdeadbeef;
  w.write(8, &v, sizeof(v));
  std::uint32_t r = 0;
  w.read(&r, 8, sizeof(r));
  EXPECT_EQ(r, v);
}

TEST(Memory, WramBoundsChecked) {
  Wram w(64);
  std::uint8_t b = 0;
  EXPECT_THROW(w.read(&b, 64, 1), OutOfBoundsError);
  EXPECT_THROW(w.write(60, &b, 5), OutOfBoundsError);
  EXPECT_NO_THROW(w.write(63, &b, 1));
}

TEST(Memory, WramSpanBoundsChecked) {
  Wram w(64);
  EXPECT_NE(w.span(0, 64), nullptr);
  EXPECT_THROW(w.span(1, 64), OutOfBoundsError);
}

TEST(Memory, MramSparseReadsZeroWhenUntouched) {
  Mram m(64ull * 1024 * 1024);
  EXPECT_EQ(m.resident_chunks(), 0u);
  std::uint64_t v = 123;
  m.read(&v, 50ull * 1024 * 1024, sizeof(v));
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(m.resident_chunks(), 0u);
}

TEST(Memory, MramWriteMaterializesOnlyTouchedChunks) {
  Mram m(64ull * 1024 * 1024);
  const std::uint64_t v = 0x1122334455667788ULL;
  m.write(10ull * 1024 * 1024, &v, sizeof(v));
  EXPECT_EQ(m.resident_chunks(), 1u);
  std::uint64_t r = 0;
  m.read(&r, 10ull * 1024 * 1024, sizeof(r));
  EXPECT_EQ(r, v);
}

TEST(Memory, MramCrossChunkTransfer) {
  Mram m(1024 * 1024);
  std::vector<std::uint8_t> buf(200000);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 31);
  }
  m.write(1000, buf.data(), buf.size());
  std::vector<std::uint8_t> back(buf.size());
  m.read(back.data(), 1000, back.size());
  EXPECT_EQ(back, buf);
  EXPECT_GE(m.resident_chunks(), 3u);
}

TEST(Memory, MramBoundsChecked) {
  Mram m(1024);
  std::uint8_t b = 0;
  EXPECT_THROW(m.read(&b, 1024, 1), OutOfBoundsError);
  EXPECT_THROW(m.write(1020, &b, 8), OutOfBoundsError);
}

TEST(Memory, IramRejectsOversizedProgram) {
  Iram ir(24 * 1024);
  EXPECT_NO_THROW(ir.load_program(24 * 1024, "fits"));
  EXPECT_THROW(ir.load_program(24 * 1024 + 1, "big"), CapacityError);
}

TEST(CostModel, DmaCyclesFollowEq34) {
  // Thesis Eq. 3.4: 2048-byte transfer = 25 + 1024 = 1049 cycles.
  EXPECT_EQ(CostModel::dma_cycles(2048), 1049u);
  EXPECT_EQ(CostModel::dma_cycles(2), 26u);
  EXPECT_EQ(CostModel::dma_cycles(0), 25u);
  EXPECT_EQ(CostModel::dma_cycles(784), 25u + 392u);
}

TEST(CostModel, O0IsMoreExpensiveThanO3) {
  const CostModel o0(OptLevel::O0);
  const CostModel o3(OptLevel::O3);
  EXPECT_GT(o0.alu_stmt(), o3.alu_stmt());
  EXPECT_GT(o0.loop_iter(), o3.loop_iter());
  EXPECT_GE(o0.mul_stmt(16), o3.mul_stmt(16));
}

TEST(CostModel, SixteenBitMultiplyCollapsesUnderOptimization) {
  // Thesis §3.3: "16-bit multiplication operations also use software
  // subroutines under no-optimization but collapse into regular
  // instructions under full optimization".
  EXPECT_TRUE(CostModel(OptLevel::O0).mul_uses_subroutine(16));
  EXPECT_FALSE(CostModel(OptLevel::O3).mul_uses_subroutine(16));
  EXPECT_TRUE(CostModel(OptLevel::O0).mul_uses_subroutine(32));
  EXPECT_TRUE(CostModel(OptLevel::O3).mul_uses_subroutine(32));
  EXPECT_FALSE(CostModel(OptLevel::O0).mul_uses_subroutine(8));
}

TEST(CostModel, SubroutineNamesArePrintable) {
  EXPECT_STREQ(subroutine_name(Subroutine::MulSI3), "__mulsi3");
  EXPECT_STREQ(subroutine_name(Subroutine::DivSF3), "__divsf3");
  EXPECT_STREQ(subroutine_name(Subroutine::FloatSISF), "__floatsisf");
}

TEST(Profile, CountsAndDistinct) {
  SubroutineProfile p;
  p.record(Subroutine::AddSF3, 3);
  p.record(Subroutine::MulSI3, 2);
  EXPECT_EQ(p.occurrences(Subroutine::AddSF3), 3u);
  EXPECT_EQ(p.total(), 5u);
  EXPECT_EQ(p.distinct(), 2u);
  EXPECT_EQ(p.float_total(), 3u);
}

TEST(Profile, MergeAccumulates) {
  SubroutineProfile a;
  SubroutineProfile b;
  a.record(Subroutine::DivSF3, 1);
  b.record(Subroutine::DivSF3, 4);
  b.record(Subroutine::LtSF2, 2);
  a.merge(b);
  EXPECT_EQ(a.occurrences(Subroutine::DivSF3), 5u);
  EXPECT_EQ(a.distinct(), 2u);
}

TEST(Profile, PrintsOccurrenceLines) {
  SubroutineProfile p;
  p.record(Subroutine::MulSF3, 7);
  std::ostringstream os;
  p.print(os);
  EXPECT_NE(os.str().find("__mulsf3"), std::string::npos);
  EXPECT_NE(os.str().find("7"), std::string::npos);
}

DpuProgram trivial_program(std::function<void(TaskletCtx&)> fn) {
  DpuProgram p;
  p.name = "test";
  p.symbols = {{"buf", MemKind::Mram, 4096},
               {"scratch", MemKind::Wram, 1024}};
  p.entry = std::move(fn);
  return p;
}

TEST(Dpu, LaunchRequiresProgram) {
  Dpu d;
  EXPECT_THROW(d.launch(1), UsageError);
}

TEST(Dpu, LaunchValidatesTaskletCount) {
  Dpu d;
  d.load(trivial_program([](TaskletCtx&) {}));
  EXPECT_THROW(d.launch(0), UsageError);
  EXPECT_THROW(d.launch(25), UsageError);
  EXPECT_NO_THROW(d.launch(24));
}

TEST(Dpu, SymbolPlacementIsAlignedAndChecked) {
  Dpu d;
  DpuProgram p;
  p.name = "syms";
  p.symbols = {{"a", MemKind::Wram, 5},
               {"b", MemKind::Wram, 16},
               {"m", MemKind::Mram, 100}};
  p.entry = [](TaskletCtx&) {};
  d.load(p);
  EXPECT_EQ(d.symbol("a").offset % 8, 0u);
  EXPECT_EQ(d.symbol("b").offset, 8u); // 5 rounded up to 8
  EXPECT_TRUE(d.has_symbol("m"));
  EXPECT_FALSE(d.has_symbol("zz"));
  EXPECT_THROW(d.symbol("zz"), SymbolError);
}

TEST(Dpu, DuplicateSymbolRejected) {
  Dpu d;
  DpuProgram p;
  p.name = "dup";
  p.symbols = {{"a", MemKind::Wram, 8}, {"a", MemKind::Wram, 8}};
  p.entry = [](TaskletCtx&) {};
  EXPECT_THROW(d.load(p), SymbolError);
}

TEST(Dpu, WramOverflowRejected) {
  Dpu d;
  DpuProgram p;
  p.name = "big";
  p.symbols = {{"w", MemKind::Wram, 65 * 1024}};
  p.entry = [](TaskletCtx&) {};
  EXPECT_THROW(d.load(p), CapacityError);
}

TEST(Dpu, HostReadWriteSymbols) {
  Dpu d;
  d.load(trivial_program([](TaskletCtx&) {}));
  const std::uint64_t v = 0xabcdef;
  d.host_write("buf", 8, &v, sizeof(v));
  std::uint64_t r = 0;
  d.host_read("buf", 8, &r, sizeof(r));
  EXPECT_EQ(r, v);
  EXPECT_THROW(d.host_write("buf", 4090, &v, sizeof(v)), OutOfBoundsError);
}

TEST(Dpu, SingleTaskletCyclesAreElevenPerSlot) {
  Dpu d;
  d.load(trivial_program([](TaskletCtx& ctx) { ctx.charge_alu(100); }));
  const auto stats = d.launch(1, OptLevel::O3);
  // O3: 1 slot per ALU stmt; single tasklet latency = 11 * slots.
  EXPECT_EQ(stats.total_slots, 100u);
  EXPECT_EQ(stats.cycles, 1100u);
}

TEST(Dpu, PipelineSaturatesAtElevenTasklets) {
  // Balanced load: per-tasklet work fixed, so cycles = max(T*S, 11*S).
  auto run = [](std::uint32_t tasklets) {
    Dpu d;
    d.load(trivial_program([](TaskletCtx& ctx) { ctx.charge_alu(1000); }));
    return d.launch(tasklets, OptLevel::O3).cycles;
  };
  const Cycles c1 = run(1);
  const Cycles c11 = run(11);
  const Cycles c16 = run(16);
  EXPECT_EQ(c1, 11000u);
  EXPECT_EQ(c11, 11000u); // latency bound still dominates at T=11
  EXPECT_EQ(c16, 16000u); // beyond 11, issue bound grows with T
  // Per-image throughput (cycles per unit work) improves until 11.
  const double tp1 = static_cast<double>(c1) / 1;
  const double tp11 = static_cast<double>(c11) / 11;
  const double tp16 = static_cast<double>(c16) / 16;
  EXPECT_NEAR(tp11, tp1 / 11.0, 1e-9);
  EXPECT_NEAR(tp16, tp11, 1.0); // saturation: no further gain past 11
}

TEST(Dpu, DmaChargesIssuerAndSharedEngine) {
  Dpu d;
  d.load(trivial_program([](TaskletCtx& ctx) {
    std::uint8_t buf[2048];
    ctx.mram_read(buf, ctx.mram_addr("buf"), 2048);
  }));
  const auto stats = d.launch(2, OptLevel::O3);
  EXPECT_EQ(stats.total_dma_cycles, 2u * 1049u);
  EXPECT_EQ(stats.total_dma_bytes, 2u * 2048u);
  EXPECT_EQ(stats.tasklets[0].dma_transfers, 1u);
  EXPECT_EQ(stats.cycles, 2u * 1049u); // DMA engine is the bottleneck
}

TEST(Dpu, PerfcounterMeasuresSlotsAndDma) {
  Dpu d;
  Cycles measured = 0;
  d.load(trivial_program([&](TaskletCtx& ctx) {
    ctx.charge_alu(7);
    ctx.perfcounter_config();
    ctx.charge_alu(10);
    std::uint8_t buf[64];
    ctx.mram_read(buf, ctx.mram_addr("buf"), 64);
    measured = ctx.perfcounter_get();
  }));
  d.launch(1, OptLevel::O3);
  EXPECT_EQ(measured, 10u * 11u + (25u + 32u));
}

TEST(Dpu, ArithmeticOpsComputeCorrectValues) {
  Dpu d;
  d.load(trivial_program([](TaskletCtx& ctx) {
    EXPECT_EQ(ctx.add(2, 3), 5);
    EXPECT_EQ(ctx.sub(2, 3), -1);
    EXPECT_EQ(ctx.mul(-7, 6, 32), -42);
    EXPECT_EQ(ctx.mul64(INT64_C(1) << 40, 4), INT64_C(1) << 42);
    EXPECT_EQ(ctx.divi(7, 2), 3);
    EXPECT_EQ(ctx.divi(-7, 2), -3);
    EXPECT_EQ(ctx.and_(0xf0f0, 0xff00), 0xf000u);
    EXPECT_EQ(ctx.or_(0x0f, 0xf0), 0xffu);
    EXPECT_EQ(ctx.xor_(0xff, 0x0f), 0xf0u);
    EXPECT_EQ(ctx.shl(1, 5), 32u);
    EXPECT_EQ(ctx.shr(32, 5), 1u);
    EXPECT_EQ(ctx.popcount(0xffffu), 16);
    EXPECT_EQ(ctx.fadd(1.5f, 2.25f), 3.75f);
    EXPECT_EQ(ctx.fmul(3.0f, -2.0f), -6.0f);
    EXPECT_EQ(ctx.fdiv(1.0f, 4.0f), 0.25f);
    EXPECT_TRUE(ctx.flt(-1.0f, 0.0f));
    EXPECT_EQ(ctx.i2f(42), 42.0f);
    EXPECT_EQ(ctx.f2i(-3.7f), -3);
  }));
  d.launch(1, OptLevel::O0);
}

TEST(Dpu, DoubleOpsComputeAndProfile) {
  Dpu d;
  d.load(trivial_program([](TaskletCtx& ctx) {
    EXPECT_EQ(ctx.dadd(1.25, 2.5), 3.75);
    EXPECT_EQ(ctx.dsub(1.0, 0.25), 0.75);
    EXPECT_EQ(ctx.dmul(3.0, -2.0), -6.0);
    EXPECT_EQ(ctx.ddiv(1.0, 8.0), 0.125);
  }));
  const auto stats = d.launch(1, OptLevel::O3);
  EXPECT_EQ(stats.profile.occurrences(Subroutine::AddDF3), 1u);
  EXPECT_EQ(stats.profile.occurrences(Subroutine::SubDF3), 1u);
  EXPECT_EQ(stats.profile.occurrences(Subroutine::MulDF3), 1u);
  EXPECT_EQ(stats.profile.occurrences(Subroutine::DivDF3), 1u);
  // Doubles are costlier than their single-precision siblings.
  EXPECT_GT(CostModel::subroutine_slots(Subroutine::MulDF3),
            CostModel::subroutine_slots(Subroutine::MulSF3));
  EXPECT_GT(CostModel::subroutine_slots(Subroutine::DivDF3),
            CostModel::subroutine_slots(Subroutine::DivSF3));
}

TEST(Dpu, DivisionByZeroThrows) {
  Dpu d;
  d.load(trivial_program([](TaskletCtx& ctx) { ctx.divi(1, 0); }));
  EXPECT_THROW(d.launch(1), UsageError);
}

TEST(Dpu, FloatOpsRecordSubroutineOccurrences) {
  Dpu d;
  d.load(trivial_program([](TaskletCtx& ctx) {
    float t = ctx.i2f(3);
    t = ctx.fadd(t, 1.0f);
    t = ctx.fdiv(t, 2.0f);
    (void)ctx.flt(t, 0.0f);
    (void)ctx.mul(5, 5, 32);
  }));
  const auto stats = d.launch(1, OptLevel::O3);
  EXPECT_EQ(stats.profile.occurrences(Subroutine::FloatSISF), 1u);
  EXPECT_EQ(stats.profile.occurrences(Subroutine::AddSF3), 1u);
  EXPECT_EQ(stats.profile.occurrences(Subroutine::DivSF3), 1u);
  EXPECT_EQ(stats.profile.occurrences(Subroutine::LtSF2), 1u);
  EXPECT_EQ(stats.profile.occurrences(Subroutine::MulSI3), 1u);
  EXPECT_EQ(stats.profile.distinct(), 5u);
}

TEST(Dpu, BatchedChargingEqualsPerOpCharging) {
  // The accounting discipline: closed-form charges must equal elementwise
  // ones. Run the same inner product both ways and compare slot totals.
  const int n = 64;
  auto make = [&](bool batched) {
    Dpu d;
    DpuProgram p;
    p.name = "parity";
    p.symbols = {{"w", MemKind::Wram, 8}};
    p.entry = [=](TaskletCtx& ctx) {
      if (batched) {
        ctx.charge_loop(n);
        ctx.charge_mul(16, n);
        ctx.charge_alu(n); // accumulate adds
      } else {
        for (int i = 0; i < n; ++i) {
          ctx.charge_loop(1);
          (void)ctx.mul(i, i, 16);
          (void)ctx.add(i, i);
        }
      }
    };
    d.load(p);
    return d.launch(1, OptLevel::O0);
  };
  const auto a = make(false);
  const auto b = make(true);
  EXPECT_EQ(a.total_slots, b.total_slots);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.profile.occurrences(Subroutine::MulSI3),
            b.profile.occurrences(Subroutine::MulSI3));
}

TEST(Dpu, UnbalancedTaskletsBoundedBySlowest) {
  Dpu d;
  DpuProgram p;
  p.name = "unbal";
  p.symbols = {{"w", MemKind::Wram, 8}};
  p.entry = [](TaskletCtx& ctx) {
    ctx.charge_alu(ctx.id() == 0 ? 1000 : 10);
  };
  d.load(p);
  const auto stats = d.launch(4, OptLevel::O3);
  // Latency bound of tasklet 0 dominates: 11 * 1000.
  EXPECT_EQ(stats.cycles, 11000u);
}

TEST(Config, Table21Attributes) {
  const UpmemConfig& c = default_config();
  EXPECT_EQ(c.total_dpus, 2560u);
  EXPECT_EQ(c.dpus_per_dimm, 128u);
  EXPECT_EQ(c.dpus_per_chip, 8u);
  EXPECT_EQ(c.mram_bytes, 64ull * 1024 * 1024);
  EXPECT_EQ(c.wram_bytes, 64ull * 1024);
  EXPECT_EQ(c.iram_bytes, 24ull * 1024);
  EXPECT_EQ(c.pipeline_stages, 11u);
  EXPECT_EQ(c.max_tasklets, 24u);
  EXPECT_DOUBLE_EQ(c.frequency_hz, 350e6);
  EXPECT_NEAR(c.cycles_to_seconds(350000000), 1.0, 1e-12);
}

} // namespace
} // namespace pimdnn::sim
