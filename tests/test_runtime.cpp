// Unit tests for the host runtime: DpuSet allocation, broadcast and
// scatter/gather transfers, the 8-byte alignment rule, parallel launch.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "runtime/dpu_set.hpp"

namespace pimdnn::runtime {
namespace {

using sim::MemKind;
using sim::TaskletCtx;

DpuProgram echo_program() {
  DpuProgram p;
  p.name = "echo";
  p.symbols = {{"in", MemKind::Mram, 1024},
               {"out", MemKind::Mram, 1024},
               {"wmeta", MemKind::Wram, 8}};
  p.entry = [](TaskletCtx& ctx) {
    if (ctx.id() != 0) return;
    std::uint8_t buf[1024];
    ctx.mram_read(buf, ctx.mram_addr("in"), 1024);
    for (int i = 0; i < 1024; ++i) {
      buf[i] = static_cast<std::uint8_t>(buf[i] + 1);
    }
    ctx.charge_alu(1024);
    ctx.mram_write(ctx.mram_addr("out"), buf, 1024);
  };
  return p;
}

TEST(DpuSet, AllocateValidatesSystemCapacity) {
  EXPECT_THROW(DpuSet::allocate(0), UsageError);
  EXPECT_THROW(DpuSet::allocate(2561), CapacityError);
  EXPECT_NO_THROW(DpuSet::allocate(4));
}

TEST(DpuSet, BroadcastCopyReachesEveryDpu) {
  auto set = DpuSet::allocate(3);
  set.load(echo_program());
  std::vector<std::uint8_t> data(64, 7);
  set.copy_to("in", 0, data.data(), data.size());
  for (DpuId d = 0; d < 3; ++d) {
    std::vector<std::uint8_t> back(64, 0);
    set.copy_from(d, "in", 0, back.data(), back.size());
    EXPECT_EQ(back, data);
  }
  EXPECT_EQ(set.bytes_to_dpus(), 3u * 64u);
}

TEST(DpuSet, AlignmentRuleEnforced) {
  auto set = DpuSet::allocate(1);
  set.load(echo_program());
  std::vector<std::uint8_t> data(7, 1);
  // Length not divisible by 8 -> AlignmentError (thesis §3.2).
  EXPECT_THROW(set.copy_to("in", 0, data.data(), 7), AlignmentError);
  // Offset not 8-byte aligned -> AlignmentError.
  EXPECT_THROW(set.copy_to("in", 4, data.data(), 8), AlignmentError);
  // Padding fixes it.
  const auto padded = pad_to_xfer(data.data(), data.size());
  EXPECT_NO_THROW(set.copy_to("in", 0, padded.data(), padded.size()));
}

TEST(DpuSet, ScatterGatherMovesDistinctData) {
  auto set = DpuSet::allocate(4);
  set.load(echo_program());
  std::vector<std::vector<std::uint8_t>> bufs(4);
  for (int d = 0; d < 4; ++d) {
    bufs[d].assign(32, static_cast<std::uint8_t>(d * 10));
    set.prepare_xfer(d, bufs[d].data());
  }
  set.push_xfer(XferDir::ToDpu, "in", 0, 32);
  for (DpuId d = 0; d < 4; ++d) {
    std::uint8_t v = 0;
    set.copy_from(d, "in", 0, &v, 0); // zero-length read is legal
    std::vector<std::uint8_t> back(32);
    set.copy_from(d, "in", 0, back.data(), 32);
    EXPECT_EQ(back, bufs[d]);
  }
}

TEST(DpuSet, PushWithoutPrepareThrows) {
  auto set = DpuSet::allocate(2);
  set.load(echo_program());
  std::vector<std::uint8_t> b(8);
  set.prepare_xfer(0, b.data()); // only DPU 0 prepared
  EXPECT_THROW(set.push_xfer(XferDir::ToDpu, "in", 0, 8), UsageError);
}

TEST(DpuSet, PreparedBuffersAreConsumedByPush) {
  auto set = DpuSet::allocate(1);
  set.load(echo_program());
  std::vector<std::uint8_t> b(8, 9);
  set.prepare_xfer(0, b.data());
  set.push_xfer(XferDir::ToDpu, "in", 0, 8);
  // A second push requires a fresh prepare.
  EXPECT_THROW(set.push_xfer(XferDir::ToDpu, "in", 0, 8), UsageError);
}

TEST(DpuSet, LaunchRunsAllDpusAndTakesMax) {
  auto set = DpuSet::allocate(5);
  DpuProgram p;
  p.name = "varying";
  p.symbols = {{"amount", MemKind::Wram, 8}};
  p.entry = [](TaskletCtx& ctx) {
    auto amount = ctx.wram_span<std::uint64_t>("amount");
    ctx.charge_alu(amount[0]);
  };
  set.load(p);
  for (DpuId d = 0; d < 5; ++d) {
    const std::uint64_t work = (d + 1) * 100;
    set.dpu(d).host_write("amount", 0, &work, sizeof(work));
  }
  const auto stats = set.launch(1, OptLevel::O3);
  ASSERT_EQ(stats.per_dpu.size(), 5u);
  EXPECT_EQ(stats.per_dpu[0].cycles, 100u * 11u);
  EXPECT_EQ(stats.per_dpu[4].cycles, 500u * 11u);
  EXPECT_EQ(stats.wall_cycles, 500u * 11u); // slowest DPU
  EXPECT_EQ(stats.total_cycles, (100u + 200u + 300u + 400u + 500u) * 11u);
  EXPECT_NEAR(stats.wall_seconds, 5500.0 / 350e6, 1e-15);
}

TEST(DpuSet, EndToEndEchoThroughMram) {
  auto set = DpuSet::allocate(2);
  set.load(echo_program());
  std::vector<std::uint8_t> data(1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  set.copy_to("in", 0, data.data(), data.size());
  set.launch(2, OptLevel::O3);
  for (DpuId d = 0; d < 2; ++d) {
    std::vector<std::uint8_t> out(1024);
    set.copy_from(d, "out", 0, out.data(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<std::uint8_t>(data[i] + 1));
    }
  }
}

TEST(DpuSet, ProfilesMergeAcrossDpus) {
  auto set = DpuSet::allocate(3);
  DpuProgram p;
  p.name = "float";
  p.symbols = {{"w", MemKind::Wram, 8}};
  p.entry = [](TaskletCtx& ctx) { (void)ctx.fadd(1.0f, 2.0f); };
  set.load(p);
  const auto stats = set.launch(2, OptLevel::O3);
  // 3 DPUs x 2 tasklets x 1 fadd each.
  EXPECT_EQ(stats.profile.occurrences(sim::Subroutine::AddSF3), 6u);
}

} // namespace
} // namespace pimdnn::runtime
