// pimdnn::obs tests: the disabled tracer must be a strict no-op, enabled
// spans must nest and export valid Chrome-trace JSON, the metrics registry
// must aggregate counters/histograms/signature summaries, and a real
// KernelSession offload must feed the residency hit/miss counters the
// cold/warm analysis relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/dpu_pool.hpp"
#include "runtime/kernel_session.hpp"

namespace pimdnn {
namespace {

using obs::Metrics;
using obs::Span;
using obs::TraceEvent;
using obs::Tracer;
using runtime::DpuPool;
using runtime::KernelSession;
using sim::MemKind;
using sim::TaskletCtx;

/// RAII guard: every test leaves the process-wide tracer/metrics clean.
struct ObsReset {
  ObsReset() { clear(); }
  ~ObsReset() { clear(); }
  static void clear() {
    Tracer::instance().disable();
    Metrics::instance().reset();
  }
};

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// ---- tracer ----------------------------------------------------------------

TEST(Trace, DisabledSpanIsNoOp) {
  ObsReset guard;
  ASSERT_FALSE(Tracer::enabled());
  Span sp("nothing", "test");
  EXPECT_FALSE(sp.active());
  sp.u64("ignored", 1);
  sp.end();
  // Nothing was buffered: a later enable starts from an empty event list.
  Tracer::instance().enable(temp_path("noop.json"));
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

TEST(Trace, SpanNestingAndOrdering) {
  ObsReset guard;
  Tracer::instance().enable(temp_path("nest.json"));
  {
    Span outer("outer", "test");
    ASSERT_TRUE(outer.active());
    outer.u64("depth", 0);
    {
      Span inner("inner", "test");
      inner.u64("depth", 1);
    }
  }
  const std::vector<TraceEvent> evs = Tracer::instance().snapshot();
  ASSERT_EQ(evs.size(), 2u);
  // Complete events are recorded at end time: inner closes first.
  EXPECT_EQ(evs[0].name, "inner");
  EXPECT_EQ(evs[1].name, "outer");
  // Same thread, and the outer span's [ts, ts+dur) contains the inner's.
  EXPECT_EQ(evs[0].tid, evs[1].tid);
  EXPECT_LE(evs[1].ts_us, evs[0].ts_us);
  EXPECT_GE(evs[1].ts_us + evs[1].dur_us, evs[0].ts_us + evs[0].dur_us);
  EXPECT_GE(evs[0].dur_us, 0.0);
}

TEST(Trace, ChromeExportIsWellFormed) {
  ObsReset guard;
  const std::string path = temp_path("chrome.json");
  Tracer::instance().enable(path);
  {
    Span sp("kernel", "test");
    sp.u64("cycles", 12345);
    sp.str("bound", "dma\"quoted\"");
    sp.f64("ratio", 1.5);
    sp.flag("warm", true);
  }
  Tracer::instance().flush();

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string json = buf.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":12345"), std::string::npos);
  // The quote inside the string arg must be escaped.
  EXPECT_NE(json.find("dma\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"warm\":true"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, JsonlStreamsOneObjectPerSpan) {
  ObsReset guard;
  const std::string path = temp_path("stream.jsonl");
  Tracer::instance().enable_jsonl(path);
  { Span a("first", "test"); }
  { Span b("second", "test"); }
  Tracer::instance().disable(); // closes the stream

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"second\""), std::string::npos);
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  std::remove(path.c_str());
}

// ---- metrics ---------------------------------------------------------------

TEST(MetricsTest, CountersAccumulate) {
  ObsReset guard;
  auto& m = Metrics::instance();
  EXPECT_EQ(m.counter("test.hits"), 0u);
  m.add("test.hits");
  m.add("test.hits", 4);
  m.add("test.other", 2);
  EXPECT_EQ(m.counter("test.hits"), 5u);
  EXPECT_EQ(m.counter("test.other"), 2u);
  EXPECT_EQ(m.counter("test.absent"), 0u);
}

TEST(MetricsTest, HistogramPercentileAggregation) {
  ObsReset guard;
  auto& m = Metrics::instance();
  for (int i = 1; i <= 100; ++i) {
    m.record("test.lat", static_cast<double>(i));
  }
  const RunningStats h = m.histogram("test.lat");
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // DDSketch-style buckets: within ~2% relative error of the true rank.
  EXPECT_NEAR(h.p50(), 50.0, 50.0 * 0.03);
  EXPECT_NEAR(h.p95(), 95.0, 95.0 * 0.03);
  EXPECT_NEAR(h.p99(), 99.0, 99.0 * 0.03);
  EXPECT_EQ(m.histogram("test.absent").count(), 0u);
}

TEST(MetricsTest, PerSignatureSummaryContents) {
  ObsReset guard;
  auto& m = Metrics::instance();
  obs::OffloadSample cold;
  cold.wall_cycles = 1000;
  cold.host_seconds = 0.5;
  cold.bytes_to_dpu = 4096;
  cold.bytes_from_dpu = 128;
  cold.program_loads = 1;
  cold.resident_misses = 1;
  cold.const_misses = 1;
  m.record_offload("sig/a", cold);

  obs::OffloadSample warm = cold;
  warm.wall_cycles = 900;
  warm.host_seconds = 0.1;
  warm.bytes_to_dpu = 512;
  warm.program_loads = 0;
  warm.cached_activations = 1;
  warm.resident_hits = 1;
  warm.resident_misses = 0;
  warm.const_hits = 1;
  warm.const_misses = 0;
  m.record_offload("sig/a", warm);
  m.record_offload("sig/b", cold);

  const auto sigs = m.signatures();
  ASSERT_EQ(sigs.size(), 2u);
  const auto& a = sigs.at("sig/a");
  EXPECT_EQ(a.launches, 2u);
  EXPECT_EQ(a.cycles.count(), 2u);
  EXPECT_DOUBLE_EQ(a.cycles.min(), 900.0);
  EXPECT_DOUBLE_EQ(a.cycles.max(), 1000.0);
  EXPECT_DOUBLE_EQ(a.host_seconds, 0.6);
  EXPECT_EQ(a.bytes_to_dpu, 4608u);
  EXPECT_EQ(a.bytes_from_dpu, 256u);
  EXPECT_EQ(a.program_loads, 1u);
  EXPECT_EQ(a.cached_activations, 1u);
  EXPECT_EQ(a.resident_hits, 1u);
  EXPECT_EQ(a.resident_misses, 1u);
  EXPECT_EQ(a.const_hits, 1u);
  EXPECT_EQ(a.const_misses, 1u);
  EXPECT_EQ(sigs.at("sig/b").launches, 1u);

  // Both renderers cover every signature.
  std::ostringstream text;
  obs::print_summary(text);
  EXPECT_NE(text.str().find("sig/a"), std::string::npos);
  EXPECT_NE(text.str().find("sig/b"), std::string::npos);
  std::ostringstream json;
  obs::write_summary_json(json);
  EXPECT_NE(json.str().find("\"signature\":\"sig/a\""), std::string::npos);
  EXPECT_NE(json.str().find("\"launches\":2"), std::string::npos);
}

// ---- end-to-end through a real KernelSession offload ------------------------

constexpr std::uint32_t kPerDpu = 2;

/// out[i] = in[i] + consts[0] (same echo kernel as test_session.cpp).
sim::DpuProgram echo_program() {
  sim::DpuProgram p;
  p.name = "echo";
  p.symbols = {{"meta", MemKind::Wram, 8},
               {"consts", MemKind::Wram, 8},
               {"buf", MemKind::Wram, 16 * 8},
               {"in_mram", MemKind::Mram, kPerDpu * 8},
               {"out_mram", MemKind::Mram, kPerDpu * 8}};
  p.entry = [](TaskletCtx& ctx) {
    auto meta = ctx.wram_span<std::uint64_t>("meta");
    auto consts = ctx.wram_span<std::uint64_t>("consts");
    auto buf = ctx.wram_span<std::uint64_t>("buf");
    const std::uint64_t n = meta[0];
    std::uint64_t* slot = buf.data() + ctx.id();
    const MemSize in = ctx.mram_addr("in_mram");
    const MemSize out = ctx.mram_addr("out_mram");
    for (std::uint64_t i = ctx.id(); i < n; i += ctx.n_tasklets()) {
      ctx.mram_read(slot, in + i * 8, 8);
      ctx.charge_alu(1);
      *slot += consts[0];
      ctx.mram_write(out + i * 8, slot, 8);
    }
  };
  return p;
}

/// One echo offload using the resident-scatter path for the input payload.
void echo_resident(DpuPool& pool, std::uint64_t payload_version) {
  KernelSession s(pool, "echo", 1, echo_program);
  const std::uint64_t add = 1;
  s.broadcast_const("consts", &add, sizeof(add));
  const std::vector<std::uint64_t> data{10, 20};
  s.scatter_resident("payload", payload_version, "in_mram", kPerDpu * 8,
                     [&](std::uint32_t, std::uint8_t* slot) {
                       std::memcpy(slot, data.data(), data.size() * 8);
                     });
  const std::uint64_t n = kPerDpu;
  s.broadcast("meta", &n, sizeof(n));
  s.launch(2);
  s.gather_items("out_mram", kPerDpu, kPerDpu, 8,
                 [](std::size_t, const std::uint8_t*) {});
  s.finish();
}

TEST(ObsEndToEnd, ColdWarmResidencyCountersThroughSession) {
  ObsReset guard;
  auto& m = Metrics::instance();
  DpuPool pool;

  // Cold: fresh activation, payload scattered, constant broadcast.
  echo_resident(pool, 1);
  EXPECT_EQ(m.counter("pool.activate.fresh"), 1u);
  EXPECT_EQ(m.counter("pool.resident.hit"), 0u);
  EXPECT_EQ(m.counter("pool.resident.miss"), 1u);

  // Warm x2: active program, payload still MRAM-resident.
  echo_resident(pool, 1);
  echo_resident(pool, 1);
  EXPECT_EQ(m.counter("pool.activate.active"), 2u);
  EXPECT_EQ(m.counter("pool.resident.hit"), 2u);
  EXPECT_EQ(m.counter("pool.resident.miss"), 1u);

  // Version bump: re-upload, counted as a miss.
  echo_resident(pool, 2);
  EXPECT_EQ(m.counter("pool.resident.hit"), 2u);
  EXPECT_EQ(m.counter("pool.resident.miss"), 2u);

  // The per-signature summary saw all four offloads with matching
  // hit/miss tallies and real transfer accounting.
  const auto sigs = m.signatures();
  ASSERT_EQ(sigs.count("echo"), 1u);
  const auto& e = sigs.at("echo");
  EXPECT_EQ(e.launches, 4u);
  EXPECT_EQ(e.resident_hits, 2u);
  EXPECT_EQ(e.resident_misses, 2u);
  EXPECT_EQ(e.const_hits, 3u);  // broadcast_const skipped on warm runs
  EXPECT_EQ(e.const_misses, 1u);
  EXPECT_EQ(e.program_loads, 1u);
  EXPECT_EQ(e.cached_activations, 3u);
  EXPECT_EQ(e.cycles.count(), 4u);
  EXPECT_GT(e.cycles.min(), 0.0);
  EXPECT_GT(e.bytes_to_dpu, 0u);
  EXPECT_GT(e.bytes_from_dpu, 0u);
  EXPECT_GT(e.host_seconds, 0.0);
}

TEST(ObsEndToEnd, SessionSpansCarryLaunchAttributes) {
  ObsReset guard;
  Tracer::instance().enable(temp_path("session.json"));
  DpuPool pool;
  echo_resident(pool, 1);
  Tracer::instance().disable();

  const auto evs = Tracer::instance().snapshot();
  auto find = [&](const char* name) -> const TraceEvent* {
    for (const auto& e : evs) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };
  ASSERT_NE(find("offload"), nullptr);
  ASSERT_NE(find("activate"), nullptr);
  ASSERT_NE(find("scatter"), nullptr);
  ASSERT_NE(find("launch"), nullptr);
  ASSERT_NE(find("gather"), nullptr);
  ASSERT_NE(find("dpu.launch"), nullptr);

  auto arg = [](const TraceEvent* e, const char* key) -> std::string {
    for (const auto& [k, v] : e->args) {
      if (k == key) return v;
    }
    return "";
  };
  const TraceEvent* launch = find("launch");
  EXPECT_EQ(arg(launch, "signature"), "\"echo\"");
  EXPECT_NE(arg(launch, "cycles"), "");
  EXPECT_NE(arg(launch, "bound"), "");
  const TraceEvent* dpu = find("dpu.launch");
  EXPECT_NE(arg(dpu, "cycles"), "");
  EXPECT_NE(arg(dpu, "bound"), "");
  EXPECT_NE(arg(dpu, "imbalance"), "");
  // The offload root span contains the launch span in time.
  const TraceEvent* root = find("offload");
  EXPECT_LE(root->ts_us, launch->ts_us);
  EXPECT_GE(root->ts_us + root->dur_us, launch->ts_us + launch->dur_us);
}

} // namespace
} // namespace pimdnn
