// pimdnn::map tests: the PIMDNN_MAPPING override grammar, the shared
// constraint checks (satellite of the 10240-element WRAM A-stage bound),
// the candidate enumerators (including quarantine-reduced DPU caps and
// degenerate shapes), the Mapper's resolution precedence, and the
// calibration contract — the analytic kernel estimators the mapper
// searches with must equal the simulated wall cycles in both sim modes,
// and the auto plan must never be predicted worse than the paper mapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sim_mode.hpp"
#include "core/offloader.hpp"
#include "ebnn/deep.hpp"
#include "ebnn/host.hpp"
#include "ebnn/mnist_synth.hpp"
#include "map/constraints.hpp"
#include "map/mapper.hpp"
#include "map/plan.hpp"
#include "map/space.hpp"
#include "yolo/config.hpp"
#include "yolo/detect.hpp"
#include "yolo/dpu_gemm.hpp"
#include "yolo/network.hpp"

namespace pimdnn {
namespace {

using runtime::OptLevel;
using yolo::GemmVariant;

// ---- override grammar ------------------------------------------------------

TEST(MappingOverride, ParsesKeywordsAndRoundTrips) {
  EXPECT_EQ(map::MappingOverride::parse("auto").kind,
            map::MappingOverride::Kind::Auto);
  EXPECT_EQ(map::MappingOverride::parse("paper").kind,
            map::MappingOverride::Kind::Paper);
  for (const char* text :
       {"auto", "paper", "rows=2", "images=8", "tasklets=4",
        "rows=2,images=8,tasklets=4", "tasklets=4,rows=2"}) {
    const auto o = map::MappingOverride::parse(text);
    // to_string canonicalizes order; re-parsing must reproduce the fields.
    const auto back = map::MappingOverride::parse(o.to_string());
    EXPECT_EQ(back.kind, o.kind) << text;
    EXPECT_EQ(back.rows_per_dpu, o.rows_per_dpu) << text;
    EXPECT_EQ(back.items_per_dpu, o.items_per_dpu) << text;
    EXPECT_EQ(back.n_tasklets, o.n_tasklets) << text;
  }
  const auto o = map::MappingOverride::parse("tasklets=4,rows=2");
  EXPECT_EQ(o.kind, map::MappingOverride::Kind::Pinned);
  EXPECT_EQ(o.rows_per_dpu, std::optional<int>(2));
  EXPECT_EQ(o.n_tasklets, std::optional<std::uint32_t>(4u));
  EXPECT_FALSE(o.items_per_dpu.has_value());
}

TEST(MappingOverride, RejectsMalformedText) {
  for (const char* text : {"bogus", "rows=", "rows=0", "tasklets=0",
                           "images=x", "rows=1,bogus=2", "rows"}) {
    EXPECT_THROW(map::MappingOverride::parse(text), ConfigError) << text;
  }
}

TEST(MappingOverride, ParsesAndRoundTripsSplit) {
  const auto lone = map::MappingOverride::parse("split=4");
  EXPECT_EQ(lone.kind, map::MappingOverride::Kind::Pinned);
  EXPECT_EQ(lone.split, std::optional<std::uint32_t>(4u));
  EXPECT_EQ(lone.to_string(), "split=4");
  // split=1 is legal: an explicit "stay unsplit".
  EXPECT_EQ(map::MappingOverride::parse("split=1").split,
            std::optional<std::uint32_t>(1u));
  const auto mixed = map::MappingOverride::parse("split=2,rows=3");
  EXPECT_EQ(mixed.rows_per_dpu, std::optional<int>(3));
  EXPECT_EQ(mixed.split, std::optional<std::uint32_t>(2u));
  const auto back = map::MappingOverride::parse(mixed.to_string());
  EXPECT_EQ(back.rows_per_dpu, mixed.rows_per_dpu);
  EXPECT_EQ(back.split, mixed.split);
}

TEST(MappingOverride, RejectsMalformedSplitNamingTheToken) {
  for (const char* text : {"split=", "split=0", "split=3", "split=abc",
                           "split=6", "rows=2,split=0"}) {
    try {
      map::MappingOverride::parse(text);
      FAIL() << "accepted '" << text << "'";
    } catch (const ConfigError& e) {
      // The diagnostic must name the offending token, not just the line.
      EXPECT_NE(std::string(e.what()).find("split"), std::string::npos)
          << text << " -> " << e.what();
    }
  }
}

TEST(MappingOverride, ScopedOverrideNestsAndRestores) {
  map::clear_default_mapping_override();
  {
    map::ScopedMappingOverride outer("paper");
    EXPECT_EQ(map::mapping_override().kind,
              map::MappingOverride::Kind::Paper);
    {
      map::ScopedMappingOverride inner("rows=3");
      EXPECT_EQ(map::mapping_override().kind,
                map::MappingOverride::Kind::Pinned);
    }
    EXPECT_EQ(map::mapping_override().kind,
              map::MappingOverride::Kind::Paper);
  }
}

// ---- shared constraints ----------------------------------------------------

TEST(MapConstraints, WramAStageBoundIsSingleSourceOfTruth) {
  // 10240 int16 elements at k=1024: exactly 5 rows fit (stride 2048 B).
  EXPECT_EQ(map::gemm_a_stride_bytes(1024), 2048u);
  EXPECT_EQ(map::max_gemm_rows_per_dpu(1024), 10);
  EXPECT_TRUE(map::gemm_rows_fit(1024, 10));
  EXPECT_FALSE(map::gemm_rows_fit(1024, 11));
  EXPECT_THROW(map::require_gemm_rows(1024, 11), UsageError);
  EXPECT_THROW(map::require_positive_rows(0), UsageError);
  EXPECT_THROW(map::require_positive_rows(-3), UsageError);
  EXPECT_THROW(map::require_gemm_tasklets(0), UsageError);
  EXPECT_THROW(map::require_gemm_tasklets(17), UsageError);
  EXPECT_THROW(map::require_gemm_shape(0, 5), UsageError);
  // A k too large for even one row: no feasible WramTiled mapping.
  EXPECT_EQ(map::max_gemm_rows_per_dpu(11000), 0);
}

TEST(MapConstraints, ErrorStringsAreStable) {
  try {
    map::require_gemm_rows(1024, 11);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_STREQ(e.what(),
                 "A rows too large to stage in WRAM (rows_per_dpu * k > "
                 "10240)");
  }
  try {
    map::require_gemm_tasklets(17);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_STREQ(e.what(), "GEMM tasklets must be in [1, 16]");
  }
}

// ---- candidate enumeration -------------------------------------------------

TEST(MappingSpace, GemmRowsIncludePaperAndWramEndpoints) {
  const auto rows = map::gemm_rows_candidates(256, 1152, {});
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front(), 1);
  // Every candidate fits the WRAM budget.
  for (int r : rows) {
    EXPECT_TRUE(map::gemm_rows_fit(1152, r)) << r;
  }
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

TEST(MappingSpace, DpuCapForcesPackedRows) {
  // A quarantine-reduced pool of 32 DPUs for a 256-row GEMM: every
  // candidate must pack >= ceil(256/32) = 8 rows per DPU.
  map::Limits limits;
  limits.max_dpus = 32;
  const auto rows = map::gemm_rows_candidates(256, 128, limits);
  ASSERT_FALSE(rows.empty());
  for (int r : rows) {
    EXPECT_GE(r, 8) << r;
  }
  // An infeasible cap (rows needed exceed the WRAM fit) yields no
  // candidates at all.
  limits.max_dpus = 1;
  EXPECT_TRUE(map::gemm_rows_candidates(256, 1024, limits).empty());
}

TEST(MappingSpace, BatchItemsCoverDegenerateSingleImage) {
  const auto one = map::batch_items_candidates(16, 1, {});
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one.front(), 1u);
  map::Limits limits;
  limits.max_dpus = 2;
  // 40 items over 2 DPUs: at least 20 per DPU — over the capacity of 16.
  EXPECT_TRUE(map::batch_items_candidates(16, 40, limits).empty());
}

TEST(MappingSpace, TaskletCandidatesIncludeSaturationPoint) {
  const auto t = map::tasklet_candidates(16);
  EXPECT_NE(std::find(t.begin(), t.end(), 11u), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), 16u), t.end());
  EXPECT_EQ(t.front(), 1u);
}

// ---- mapper precedence -----------------------------------------------------

map::GemmRequest small_gemm_request(int m, int n, int k) {
  map::GemmRequest req;
  req.m = m;
  req.n = n;
  req.k = k;
  req.kernel_cycles = [n, k](int rows, std::uint32_t t) {
    return yolo::estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled, t,
                                          OptLevel::O3, rows);
  };
  req.bcast_bytes_per_dpu = static_cast<MemSize>(k) * n * 2;
  req.a_bytes_per_row = map::gemm_a_stride_bytes(k);
  req.c_bytes_per_row = static_cast<MemSize>(n) * 2;
  return req;
}

TEST(Mapper, CallerPinsBeatEnvironment) {
  map::ScopedMappingOverride env("rows=4,tasklets=2");
  auto req = small_gemm_request(8, 300, 64);
  req.pinned_rows = 2;
  req.pinned_tasklets = 8;
  const auto plan = map::Mapper().plan_gemm(req);
  EXPECT_EQ(plan.source, map::MappingSource::Pinned);
  EXPECT_EQ(plan.rows_per_dpu, 2);
  EXPECT_EQ(plan.n_tasklets, 8u);
  EXPECT_EQ(plan.n_dpus, 4u);
}

TEST(Mapper, PartialPinFallsBackToPaperValues) {
  map::clear_default_mapping_override();
  auto req = small_gemm_request(8, 300, 64);
  req.pinned_tasklets = 8; // rows unpinned -> paper's 1 row per DPU
  const auto plan = map::Mapper().plan_gemm(req);
  EXPECT_EQ(plan.source, map::MappingSource::Pinned);
  EXPECT_EQ(plan.rows_per_dpu, 1);
  EXPECT_EQ(plan.n_tasklets, 8u);
}

TEST(Mapper, PaperOverrideReproducesThesisMapping) {
  map::ScopedMappingOverride env("paper");
  const auto plan = map::Mapper().plan_gemm(small_gemm_request(8, 300, 64));
  EXPECT_EQ(plan.source, map::MappingSource::Paper);
  EXPECT_EQ(plan.rows_per_dpu, 1);
  EXPECT_EQ(plan.n_tasklets, 11u);
  EXPECT_EQ(plan.n_dpus, 8u);
}

TEST(Mapper, AutoNeverPredictedWorseThanPaper) {
  map::clear_default_mapping_override();
  for (int m : {1, 8, 64, 256}) {
    const auto req = small_gemm_request(m, 2704, 1152);
    map::ScopedMappingOverride paper("paper");
    const auto paper_plan = map::Mapper().plan_gemm(req);
    map::ScopedMappingOverride auto_mode("auto");
    const auto auto_plan = map::Mapper().plan_gemm(req);
    EXPECT_EQ(auto_plan.source, map::MappingSource::Auto);
    EXPECT_LE(auto_plan.predicted.makespan_seconds,
              paper_plan.predicted.makespan_seconds)
        << "m=" << m;
  }
}

TEST(Mapper, AutoGemmRespectsDpuCapacityLimit) {
  map::clear_default_mapping_override();
  auto req = small_gemm_request(64, 300, 64);
  // A quarantine-shrunken pool caps the plan: the infeasible 64-DPU paper
  // seed must yield to a feasible packed mapping even when the packed
  // mapping prices worse.
  req.limits.max_dpus = 63;
  const auto plan = map::Mapper().plan_gemm(req);
  EXPECT_EQ(plan.source, map::MappingSource::Auto);
  EXPECT_LE(plan.n_dpus, 63u);
  EXPECT_GE(plan.rows_per_dpu, 2);
}

TEST(Mapper, AutoBatchRespectsDpuCapacityLimit) {
  map::clear_default_mapping_override();
  map::BatchRequest req;
  req.n_items = 64;
  req.capacity = 16;
  req.paper_items = 1; // paper seed: one item per DPU -> 64 DPUs
  req.paper_tasklets = 1;
  req.kernel_cycles = [](std::uint32_t items, std::uint32_t t) {
    return static_cast<Cycles>(1000 * ((items + t - 1) / t));
  };
  req.item_in_bytes = 784;
  req.item_out_bytes = 40;
  req.limits.max_dpus = 8;
  const auto plan = map::Mapper().plan_batch(req);
  EXPECT_LE(plan.n_dpus, 8u);
  EXPECT_GE(plan.items_per_dpu, 8u);
}

TEST(Mapper, BatchDegenerateSingleItem) {
  map::clear_default_mapping_override();
  map::BatchRequest req;
  req.n_items = 1;
  req.capacity = 16;
  req.kernel_cycles = [](std::uint32_t items, std::uint32_t t) {
    return static_cast<Cycles>(1000 * ((items + t - 1) / t));
  };
  req.item_in_bytes = 784;
  req.item_out_bytes = 40;
  const auto plan = map::Mapper().plan_batch(req);
  EXPECT_EQ(plan.n_dpus, 1u);
  EXPECT_GE(plan.items_per_dpu, 1u);
  EXPECT_GE(plan.n_tasklets, 1u);
}

TEST(Mapper, PlanObsSuffixNamesEveryDimension) {
  map::MappingPlan plan;
  plan.rows_per_dpu = 2;
  plan.items_per_dpu = 8;
  plan.n_tasklets = 11;
  plan.source = map::MappingSource::Auto;
  EXPECT_EQ(plan.obs_suffix(), "/map=auto/r=2/i=8/t=11");
  // A split plan gets its own signature bucket: "/s=K" only when split.
  plan.split = 2;
  EXPECT_EQ(plan.obs_suffix(), "/map=auto/r=2/i=8/t=11/s=2");
}

// ---- split selection -------------------------------------------------------

/// An eBNN-shaped batch request: real per-image transfer volumes and the
/// calibrated kernel estimator, the same request the bench prices.
map::BatchRequest ebnn_batch_request(std::size_t n_items,
                                     std::uint32_t max_split) {
  static const ebnn::EbnnConfig cfg;
  map::BatchRequest req;
  req.n_items = n_items;
  req.capacity = 16;
  req.kernel_cycles = [](std::uint32_t items, std::uint32_t tk) {
    return ebnn::estimate_ebnn_wall_cycles(cfg, ebnn::BnMode::HostLut,
                                           ebnn::ConvKernel::Scalar, items,
                                           tk, OptLevel::O3);
  };
  req.item_in_bytes = 28 * 28;
  req.item_out_bytes = 64;
  req.max_split = max_split;
  return req;
}

TEST(MapperSplit, CallSitesWithoutSplitPathNeverSplit) {
  map::clear_default_mapping_override();
  // max_split=1 (every historical call site): the split axis stays shut.
  const auto plan =
      map::Mapper().plan_batch(ebnn_batch_request(256, 1));
  EXPECT_EQ(plan.split, 1u);
}

TEST(MapperSplit, PaperOverrideNeverSplits) {
  map::ScopedMappingOverride env("paper");
  const auto plan =
      map::Mapper().plan_batch(ebnn_batch_request(256, 8));
  EXPECT_EQ(plan.source, map::MappingSource::Paper);
  EXPECT_EQ(plan.split, 1u);
}

TEST(MapperSplit, AutoSplitsOnlyOnStrictPredictedWin) {
  map::ScopedMappingOverride env("auto");
  const auto unsplit =
      map::Mapper().plan_batch(ebnn_batch_request(256, 1));
  const auto split =
      map::Mapper().plan_batch(ebnn_batch_request(256, 8));
  // The overlapped two-bank timeline hides transfers behind kernels:
  // the mapper must find a strictly cheaper split for this shape.
  EXPECT_GT(split.split, 1u);
  EXPECT_LT(split.predicted.makespan_seconds,
            unsplit.predicted.makespan_seconds);
  // n_dpus stays the TOTAL across sub-launches; executors re-derive the
  // cut points from (n_dpus, split) via map::split_ranges.
  const auto ranges = map::split_ranges(split.n_dpus, split.split);
  EXPECT_EQ(ranges.size(), split.split);
  std::uint32_t total = 0;
  for (const auto& r : ranges) total += r.n_units;
  EXPECT_EQ(total, split.n_dpus);
}

TEST(MapperSplit, EnvPinnedSplitClampedByCallSiteCapability) {
  map::ScopedMappingOverride env("split=8");
  // The call site can only double-buffer 2 sub-launches: clamp 8 -> 2.
  const auto clamped =
      map::Mapper().plan_batch(ebnn_batch_request(256, 2));
  EXPECT_EQ(clamped.split, 2u);
  // A split-incapable call site ignores the pin entirely.
  const auto unsplit =
      map::Mapper().plan_batch(ebnn_batch_request(256, 1));
  EXPECT_EQ(unsplit.split, 1u);
  // A fully capable call site honors it.
  const auto full = map::Mapper().plan_batch(ebnn_batch_request(256, 8));
  EXPECT_EQ(full.split, 8u);
}

TEST(MapperSplit, GemmSplitPricedAgainstUnsplitPaperFirst) {
  map::ScopedMappingOverride env("auto");
  auto req = small_gemm_request(64, 2704, 1152);
  const auto unsplit = map::Mapper().plan_gemm(req);
  req.max_split = 8;
  const auto split = map::Mapper().plan_gemm(req);
  // Split is only ever chosen on a strict predicted win over the best
  // unsplit plan (which itself never prices worse than paper).
  EXPECT_LE(split.predicted.makespan_seconds,
            unsplit.predicted.makespan_seconds);
  if (split.split > 1) {
    EXPECT_LT(split.predicted.makespan_seconds,
              unsplit.predicted.makespan_seconds);
  }
}

// ---- pipeline wiring -------------------------------------------------------

TEST(MapPipelines, GemmAutoMatchesPaperBitExactly) {
  map::clear_default_mapping_override();
  const int m = 24, n = 300, k = 64;
  Rng rng(99);
  std::vector<std::int16_t> a(static_cast<std::size_t>(m) * k);
  std::vector<std::int16_t> b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-50, 50));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-50, 50));

  runtime::DpuPool pool_auto{sim::default_config()};
  runtime::DpuPool pool_paper{sim::default_config()};
  const auto auto_r = yolo::dpu_gemm_pooled(
      pool_auto, m, n, k, 1, a, b, GemmVariant::WramTiled,
      map::kAutoTasklets, OptLevel::O3, map::kAutoRows);
  map::ScopedMappingOverride env("paper");
  const auto paper_r = yolo::dpu_gemm_pooled(
      pool_paper, m, n, k, 1, a, b, GemmVariant::WramTiled,
      map::kAutoTasklets, OptLevel::O3, map::kAutoRows);
  EXPECT_EQ(auto_r.c, paper_r.c);
  EXPECT_EQ(paper_r.dpus_used, static_cast<std::uint32_t>(m));
}

TEST(MapPipelines, YoloDefaultOptionsResolveThroughMapper) {
  map::clear_default_mapping_override();
  const auto defs = yolo::yolov3_lite_config(1, 1);
  const auto w = yolo::YoloWeights::random(defs, 3, 515);
  yolo::YoloRunner runner(defs, w, 3, 32, 32);
  const auto img = yolo::make_synthetic_image(3, 32, 32, 5, 6);

  // Auto (all defaults) vs the env-pinned paper mapping: bit-identical
  // outputs, and paper reproduces the thesis' one-row-per-DPU counts.
  yolo::RunOptions opts; // sentinels
  const auto auto_run = runner.run(img, opts);
  map::ScopedMappingOverride env("paper");
  yolo::YoloRunner paper_runner(defs, w, 3, 32, 32);
  const auto paper_run = paper_runner.run(img, opts);
  ASSERT_EQ(auto_run.outputs.size(), paper_run.outputs.size());
  for (std::size_t i = 0; i < auto_run.outputs.size(); ++i) {
    EXPECT_EQ(auto_run.outputs[i], paper_run.outputs[i]) << "layer " << i;
  }
  for (std::size_t i = 0; i < defs.size(); ++i) {
    if (defs[i].type != yolo::LayerType::Convolutional) continue;
    EXPECT_EQ(paper_run.layers[i].dpus,
              static_cast<std::uint32_t>(defs[i].filters))
        << "paper mapping must keep one row per DPU at layer " << i;
  }
}

TEST(MapPipelines, ExplicitZeroTaskletsStillThrow) {
  const auto defs = yolo::yolov3_lite_config(1, 1);
  const auto w = yolo::YoloWeights::random(defs, 3, 515);
  yolo::YoloRunner runner(defs, w, 3, 32, 32);
  const auto img = yolo::make_synthetic_image(3, 32, 32, 5, 6);
  yolo::RunOptions opts;
  opts.n_tasklets = 0;
  EXPECT_THROW(runner.run(img, opts), UsageError);
  opts.n_tasklets = map::kAutoTasklets;
  opts.rows_per_dpu = -1;
  EXPECT_THROW(runner.run(img, opts), UsageError);
}

TEST(MapPipelines, EbnnAutoMatchesPaperPredictions) {
  map::clear_default_mapping_override();
  const ebnn::EbnnConfig cfg;
  const auto w = ebnn::EbnnWeights::random(cfg, 42);
  const auto images = ebnn::images_only(ebnn::make_synthetic_mnist(33, 9));

  ebnn::EbnnHost auto_host(cfg, w, ebnn::BnMode::HostLut);
  const auto auto_r = auto_host.run(images); // sentinel tasklets
  map::ScopedMappingOverride env("paper");
  ebnn::EbnnHost paper_host(cfg, w, ebnn::BnMode::HostLut);
  const auto paper_r = paper_host.run(images);
  EXPECT_EQ(auto_r.predicted, paper_r.predicted);
  EXPECT_EQ(auto_r.features, paper_r.features);
  // Paper mapping: 16 images per DPU -> ceil(33/16) = 3 DPUs.
  EXPECT_EQ(paper_r.dpus_used, 3u);
}

TEST(MapPipelines, OffloaderAutoSentinelRunsPaperWithoutCostHook) {
  map::clear_default_mapping_override();
  core::WorkloadSpec spec;
  spec.name = "map_test";
  spec.item_in_bytes = 8;
  spec.item_out_bytes = 8;
  spec.items_per_dpu = 4;
  core::Offloader eng(spec, [](core::ItemCtx& ic) {
    ic.ctx.charge_alu(1);
    std::uint64_t v;
    std::memcpy(&v, ic.input, 8);
    v *= 3;
    std::memcpy(ic.output, &v, 8);
  });
  std::vector<std::vector<std::uint8_t>> items(10);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].resize(8);
    const std::uint64_t v = i + 1;
    std::memcpy(items[i].data(), &v, 8);
  }
  const auto auto_r = eng.run(items); // sentinel: no hook -> paper mapping
  const auto pinned = eng.run(items, 4);
  EXPECT_EQ(auto_r.outputs, pinned.outputs);
  EXPECT_EQ(auto_r.dpus_used, 3u); // ceil(10/4)
}

// ---- calibration: estimators equal simulated walls -------------------------

class BothSimModes : public ::testing::TestWithParam<SimMode> {
protected:
  void SetUp() override { set_default_sim_mode(GetParam()); }
  void TearDown() override { set_default_sim_mode(SimMode::Interp); }
};

TEST_P(BothSimModes, EbnnEstimatorEqualsSimulatedWall) {
  const ebnn::EbnnConfig cfg;
  const auto w = ebnn::EbnnWeights::random(cfg, 42);
  for (const auto mode : {ebnn::BnMode::HostLut, ebnn::BnMode::SoftFloat}) {
    for (const auto kernel :
         {ebnn::ConvKernel::Scalar, ebnn::ConvKernel::PackedRows}) {
      for (const std::uint32_t n_images : {1u, 5u, 16u}) {
        for (const std::uint32_t t : {1u, 3u, 16u}) {
          const auto images =
              ebnn::images_only(ebnn::make_synthetic_mnist(n_images, 7));
          ebnn::EbnnHost host(cfg, w, mode, sim::default_config(), kernel);
          const auto r = host.run(images, t); // pinned: one full DPU
          EXPECT_EQ(r.launch.wall_cycles,
                    ebnn::estimate_ebnn_wall_cycles(cfg, mode, kernel,
                                                    n_images, t,
                                                    OptLevel::O3))
              << "mode=" << static_cast<int>(mode)
              << " kernel=" << static_cast<int>(kernel)
              << " images=" << n_images << " t=" << t;
        }
      }
    }
  }
}

TEST_P(BothSimModes, DeepEbnnEstimatorEqualsSimulatedWall) {
  ebnn::DeepEbnnConfig cfg;
  cfg.blocks = {{8}, {12}};
  const auto w = ebnn::DeepEbnnWeights::random(cfg, 11);
  ebnn::DeepEbnnHost host(cfg, w);
  const std::uint32_t cap = host.images_per_dpu();
  for (const std::uint32_t n_images : {1u, cap}) {
    for (const std::uint32_t t : {1u, cap}) {
      const auto images =
          ebnn::images_only(ebnn::make_synthetic_mnist(n_images, 3));
      const auto r = host.run(images, t); // pinned: one full DPU
      EXPECT_EQ(r.launch.wall_cycles,
                ebnn::estimate_deep_ebnn_wall_cycles(cfg, n_images, t,
                                                     OptLevel::O3))
          << "images=" << n_images << " t=" << t;
    }
  }
}

TEST_P(BothSimModes, GemmEstimatorEqualsSimulatedWall) {
  const int m = 4, n = 300, k = 64;
  Rng rng(31);
  std::vector<std::int16_t> a(static_cast<std::size_t>(m) * k);
  std::vector<std::int16_t> b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-40, 40));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-40, 40));
  for (const int rows : {1, 2, 4}) {
    for (const std::uint32_t t : {1u, 8u, 11u}) {
      const auto r = yolo::dpu_gemm(m, n, k, 1, a, b,
                                    GemmVariant::WramTiled, t,
                                    OptLevel::O3, sim::default_config(),
                                    rows);
      EXPECT_EQ(r.stats.wall_cycles,
                yolo::estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled,
                                               t, OptLevel::O3, rows))
          << "rows=" << rows << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MapCalibration, BothSimModes,
                         ::testing::Values(SimMode::Interp, SimMode::Fast),
                         [](const auto& info) {
                           return std::string(sim_mode_name(info.param));
                         });

} // namespace
} // namespace pimdnn
