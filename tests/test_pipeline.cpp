// Async double-buffered pipeline tests: HostPool primitives (submit/wait,
// helping waits, parallel_for, exception propagation, reentrancy,
// shutdown draining, zero-worker fallback), PipelineModel timeline math,
// async<->sync bit-exact parity for YOLOv3, both eBNN pipelines and the
// generic offloader — including a fixed-seed PIMDNN_FAULTS run — plus the
// steady-state invariants: zero thread creations per warm launch and zero
// staging-arena misses on warm frames. Every executor test is
// parameterized over both SimModes: the interpreter and the fast
// analytic executor must drive the same pipelined paths — including
// mapper-chosen split schedules — to identical bits.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/sim_mode.hpp"
#include "core/offloader.hpp"
#include "ebnn/deep.hpp"
#include "ebnn/host.hpp"
#include "ebnn/mnist_synth.hpp"
#include "obs/metrics.hpp"
#include "runtime/host_pool.hpp"
#include "runtime/pipeline.hpp"
#include "sim/fault.hpp"
#include "yolo/config.hpp"
#include "yolo/detect.hpp"
#include "yolo/network.hpp"

namespace pimdnn {
namespace {

using runtime::HostPool;
using runtime::PipelineModel;
using runtime::PipelineStats;

// ---- HostPool --------------------------------------------------------------

TEST(HostPool, ParallelForMatchesSerialLoop) {
  HostPool pool(3);
  constexpr std::uint32_t n = 1000;
  std::vector<std::uint64_t> out(n, 0);
  pool.parallel_for(n, [&](std::uint32_t i) {
    out[i] = static_cast<std::uint64_t>(i) * i + 7;
  });
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<std::uint64_t>(i) * i + 7) << i;
  }
}

TEST(HostPool, ZeroWorkerPoolRunsEverythingInline) {
  HostPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::atomic<int> hits{0};
  pool.parallel_for(17, [&](std::uint32_t) { ++hits; });
  EXPECT_EQ(hits.load(), 17);
  auto h = pool.submit([&] { ++hits; });
  EXPECT_TRUE(h.valid());
  h.wait(); // the waiter executes the queued task itself
  EXPECT_EQ(hits.load(), 18);
  EXPECT_TRUE(h.ready());
}

TEST(HostPool, SubmitWaitIsRepeatableAndDefaultHandleInvalid) {
  HostPool pool(1);
  std::atomic<int> runs{0};
  auto h = pool.submit([&] { ++runs; });
  h.wait();
  h.wait(); // second wait is a no-op, the task ran exactly once
  EXPECT_EQ(runs.load(), 1);
  HostPool::TaskHandle none;
  EXPECT_FALSE(none.valid());
}

TEST(HostPool, SubmitPropagatesExceptionToWaiter) {
  HostPool pool(1);
  auto h = pool.submit([] { throw UsageError("boom"); });
  EXPECT_THROW(h.wait(), UsageError);
  // Repeated waits rethrow the same captured exception.
  EXPECT_THROW(h.wait(), UsageError);
}

TEST(HostPool, ParallelForPropagatesBodyException) {
  HostPool pool(2);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::uint32_t i) {
                                   if (i == 13) {
                                     throw UsageError("body");
                                   }
                                 }),
               UsageError);
  // The pool survives: later work still runs.
  std::atomic<int> hits{0};
  pool.parallel_for(8, [&](std::uint32_t) { ++hits; });
  EXPECT_EQ(hits.load(), 8);
}

TEST(HostPool, NestedParallelForInsideTaskDoesNotDeadlock) {
  // A submitted task that itself fans out mirrors the pipelined frame
  // driver (run_frame's postprocess runs parallel_for on the same pool).
  for (std::uint32_t workers : {0u, 2u}) {
    HostPool pool(workers);
    std::atomic<int> hits{0};
    auto h = pool.submit(
        [&] { pool.parallel_for(32, [&](std::uint32_t) { ++hits; }); });
    h.wait();
    EXPECT_EQ(hits.load(), 32) << workers << " workers";
  }
}

TEST(HostPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> runs{0};
  {
    HostPool pool(0); // nothing dequeues until wait or shutdown
    for (int i = 0; i < 5; ++i) {
      pool.submit([&] { ++runs; });
    }
    EXPECT_EQ(runs.load(), 0);
  }
  // Shutdown executed the still-queued tasks instead of dropping them.
  EXPECT_EQ(runs.load(), 5);
}

// ---- PipelineModel ---------------------------------------------------------

TEST(Pipeline, TwoBankScheduleOverlapsDpuPhases) {
  PipelineModel model(2);
  // Two identical items on alternating banks: host 1s, xfer 0.5s, dpu 4s.
  for (std::size_t item = 0; item < 2; ++item) {
    const unsigned bank = static_cast<unsigned>(item % 2);
    model.host_stage(item, 1.0);
    model.xfer_stage(item, bank, 0.5);
    model.dpu_stage(item, bank, 4.0);
  }
  const PipelineStats s = model.stats();
  EXPECT_EQ(s.items, 2u);
  EXPECT_DOUBLE_EQ(s.serial_seconds, 11.0);
  // Host lane: h0 [0,1], x0 [1,1.5], h1 [1.5,2.5], x1 [2.5,3].
  // Banks: dpu0 [1.5,5.5] on bank 0, dpu1 [3,7] on bank 1.
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 7.0);
  EXPECT_DOUBLE_EQ(s.host_seconds, 3.0);
  EXPECT_DOUBLE_EQ(s.dpu_seconds, 8.0);
  EXPECT_DOUBLE_EQ(s.speedup(), 11.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.overlap_efficiency(), 1.0 - 7.0 / 11.0);
}

TEST(Pipeline, HostLaneSerializesAcrossItems) {
  PipelineModel model(2);
  model.host_stage(0, 1.0);
  model.host_stage(1, 1.0);
  const PipelineStats s = model.stats();
  // Two host stages cannot overlap: one host lane.
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.serial_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.speedup(), 1.0);
}

TEST(Pipeline, SameBankItemsSerialize) {
  PipelineModel model(1);
  model.dpu_stage(0, 0, 4.0);
  model.dpu_stage(1, 0, 4.0);
  const PipelineStats s = model.stats();
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 8.0);
}

TEST(Pipeline, EmptyModelHasNeutralStats) {
  const PipelineStats s = PipelineModel(2).stats();
  EXPECT_EQ(s.items, 0u);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.speedup(), 1.0);
  EXPECT_DOUBLE_EQ(s.overlap_efficiency(), 0.0);
}

// ---- async <-> sync parity -------------------------------------------------

/// Executor tests run under both simulators: pipelined execution must be
/// bit-exact with the synchronous path whether the kernels run through
/// the tasklet interpreter or the fast analytic executor.
class PipelineBothSims : public ::testing::TestWithParam<SimMode> {
protected:
  void SetUp() override { set_default_sim_mode(GetParam()); }
  void TearDown() override { set_default_sim_mode(SimMode::Interp); }
};

INSTANTIATE_TEST_SUITE_P(SimModes, PipelineBothSims,
                         ::testing::Values(SimMode::Interp, SimMode::Fast),
                         [](const auto& info) {
                           return std::string(sim_mode_name(info.param));
                         });

std::vector<std::vector<std::int16_t>> yolo_frames(int n, int h, int w) {
  std::vector<std::vector<std::int16_t>> frames;
  for (int i = 0; i < n; ++i) {
    frames.push_back(
        yolo::make_synthetic_image(3, h, w, 5, 100 + static_cast<unsigned>(i)));
  }
  return frames;
}

TEST_P(PipelineBothSims, YoloPipelinedMatchesSyncBitExactly) {
  const auto defs = yolo::yolov3_lite_config(1, 1);
  const auto w = yolo::YoloWeights::random(defs, 3, 77);
  yolo::YoloRunner runner(defs, w, 3, 64, 64);
  const auto frames = yolo_frames(4, 64, 64);

  yolo::RunOptions opts;
  opts.mode = yolo::ExecMode::DpuWram;
  opts.n_tasklets = 8;

  std::vector<yolo::YoloRunResult> sync;
  for (const auto& f : frames) {
    sync.push_back(runner.run(f, opts));
  }

  const auto piped = runner.run_pipelined(frames, opts);
  ASSERT_EQ(piped.frames.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(piped.frames[i].outputs, sync[i].outputs) << "frame " << i;
  }
  EXPECT_EQ(piped.pipeline.items, frames.size());
  EXPECT_GT(piped.pipeline.serial_seconds, 0.0);
  EXPECT_GE(piped.pipeline.serial_seconds,
            piped.pipeline.makespan_seconds - 1e-12);
  // Consecutive frames' DPU phases overlapped on the two banks.
  EXPECT_GT(piped.pipeline.speedup(), 1.0);
}

TEST_P(PipelineBothSims, YoloPipelinedRejectsCpuModeAndBadFrames) {
  const auto defs = yolo::yolov3_lite_config(1, 1);
  const auto w = yolo::YoloWeights::random(defs, 3, 77);
  yolo::YoloRunner runner(defs, w, 3, 64, 64);
  const auto frames = yolo_frames(2, 64, 64);

  yolo::RunOptions cpu;
  cpu.mode = yolo::ExecMode::Cpu;
  EXPECT_THROW(runner.run_pipelined(frames, cpu), UsageError);

  yolo::RunOptions opts;
  opts.mode = yolo::ExecMode::DpuWram;
  auto bad = frames;
  bad[1].pop_back();
  EXPECT_THROW(runner.run_pipelined(bad, opts), UsageError);
  EXPECT_TRUE(runner.run_pipelined({}, opts).frames.empty());
}

std::vector<std::vector<ebnn::Image>> ebnn_batches(std::size_t n_batches,
                                                   std::size_t per_batch) {
  const auto images = ebnn::images_only(
      ebnn::make_synthetic_mnist(n_batches * per_batch, 11));
  std::vector<std::vector<ebnn::Image>> batches(n_batches);
  for (std::size_t b = 0; b < n_batches; ++b) {
    batches[b].assign(images.begin() + b * per_batch,
                      images.begin() + (b + 1) * per_batch);
  }
  return batches;
}

TEST_P(PipelineBothSims, EbnnPipelinedMatchesSyncBitExactly) {
  const ebnn::EbnnConfig cfg;
  const auto weights = ebnn::EbnnWeights::random(cfg, 42);
  const auto batches = ebnn_batches(3, 16);

  ebnn::EbnnHost host(cfg, weights, ebnn::BnMode::HostLut);
  std::vector<ebnn::EbnnBatchResult> sync;
  for (const auto& b : batches) {
    sync.push_back(host.run(b, 16));
  }

  const auto piped = host.run_pipelined(batches, 16);
  ASSERT_EQ(piped.batches.size(), batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(piped.batches[i].predicted, sync[i].predicted) << i;
    EXPECT_EQ(piped.batches[i].features, sync[i].features) << i;
  }
  EXPECT_EQ(piped.pipeline.items, batches.size());
  EXPECT_GT(piped.pipeline.speedup(), 1.0);
}

TEST_P(PipelineBothSims, DeepEbnnPipelinedMatchesSyncBitExactly) {
  ebnn::DeepEbnnConfig cfg;
  const auto weights = ebnn::DeepEbnnWeights::random(cfg, 42);
  const auto batches = ebnn_batches(3, 8);

  ebnn::DeepEbnnHost host(cfg, weights);
  std::vector<ebnn::DeepEbnnBatchResult> sync;
  for (const auto& b : batches) {
    sync.push_back(host.run(b));
  }

  const auto piped = host.run_pipelined(batches);
  ASSERT_EQ(piped.batches.size(), batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(piped.batches[i].predicted, sync[i].predicted) << i;
    EXPECT_EQ(piped.batches[i].features, sync[i].features) << i;
  }
  EXPECT_GT(piped.pipeline.speedup(), 1.0);
}

TEST_P(PipelineBothSims, OffloaderPipelinedMatchesSyncBitExactly) {
  core::WorkloadSpec spec;
  spec.name = "scale";
  spec.item_in_bytes = 32;
  spec.item_out_bytes = 32;
  spec.items_per_dpu = 4;
  spec.consts = {5};
  core::Offloader off(spec, [](core::ItemCtx& ic) {
    for (MemSize i = 0; i < 32; ++i) {
      const std::int32_t v = ic.input[i];
      ic.output[i] = static_cast<std::uint8_t>(
          ic.ctx.add(ic.ctx.mul(v, 2, 8), ic.consts[0]));
    }
    ic.ctx.charge_loop(32);
  });

  std::vector<std::vector<std::vector<std::uint8_t>>> batches(3);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    batches[b].resize(10);
    for (std::size_t i = 0; i < batches[b].size(); ++i) {
      batches[b][i].resize(32);
      for (std::size_t j = 0; j < 32; ++j) {
        batches[b][i][j] = static_cast<std::uint8_t>(b * 31 + i * 3 + j);
      }
    }
  }

  std::vector<core::OffloadResult> sync;
  for (const auto& b : batches) {
    sync.push_back(off.run(b, 4));
  }

  const auto piped = off.run_pipelined(batches, 4);
  ASSERT_EQ(piped.batches.size(), batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(piped.batches[i].outputs, sync[i].outputs) << i;
    EXPECT_EQ(piped.batches[i].dpus_used, sync[i].dpus_used) << i;
  }
  EXPECT_EQ(piped.pipeline.items, batches.size());
  EXPECT_GT(piped.pipeline.speedup(), 1.0);
}

// ---- fault parity ----------------------------------------------------------

/// Pipelined runs under deterministic fault injection must self-heal to
/// the same bits as clean synchronous runs — in both simulators.
class PipelineFaultBothSims : public ::testing::TestWithParam<SimMode> {
protected:
  void SetUp() override {
    sim::set_fault_config(sim::FaultConfig{});
    obs::Metrics::instance().reset();
    set_default_sim_mode(GetParam());
  }
  void TearDown() override {
    sim::set_fault_config(sim::FaultConfig{});
    obs::Metrics::instance().reset();
    set_default_sim_mode(SimMode::Interp);
  }
};

INSTANTIATE_TEST_SUITE_P(SimModes, PipelineFaultBothSims,
                         ::testing::Values(SimMode::Interp, SimMode::Fast),
                         [](const auto& info) {
                           return std::string(sim_mode_name(info.param));
                         });

TEST_P(PipelineFaultBothSims, PipelinedRunsSurviveFaultsBitExactly) {
  const auto defs = yolo::yolov3_lite_config(1, 1);
  const auto w = yolo::YoloWeights::random(defs, 3, 77);
  const auto frames = yolo_frames(3, 64, 64);
  yolo::RunOptions opts;
  opts.mode = yolo::ExecMode::DpuWram;
  opts.n_tasklets = 8;

  const ebnn::EbnnConfig cfg;
  const auto weights = ebnn::EbnnWeights::random(cfg, 42);
  const auto batches = ebnn_batches(3, 16);

  // Clean synchronous baselines (fresh executors: cold pools).
  std::vector<std::vector<std::vector<std::int16_t>>> clean_yolo;
  {
    yolo::YoloRunner runner(defs, w, 3, 64, 64);
    for (const auto& f : frames) {
      clean_yolo.push_back(runner.run(f, opts).outputs);
    }
  }
  std::vector<std::vector<int>> clean_pred;
  {
    ebnn::EbnnHost host(cfg, weights, ebnn::BnMode::HostLut);
    for (const auto& b : batches) {
      clean_pred.push_back(host.run(b, 16).predicted);
    }
  }

  sim::FaultConfig fcfg;
  fcfg.seed = 42;
  fcfg.launch_fail_rate = 0.05;
  fcfg.transfer_corrupt_rate = 0.01;
  sim::set_fault_config(fcfg);

  {
    yolo::YoloRunner runner(defs, w, 3, 64, 64);
    const auto piped = runner.run_pipelined(frames, opts);
    ASSERT_EQ(piped.frames.size(), frames.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(piped.frames[i].outputs, clean_yolo[i]) << "frame " << i;
    }
  }
  {
    ebnn::EbnnHost host(cfg, weights, ebnn::BnMode::HostLut);
    const auto piped = host.run_pipelined(batches, 16);
    ASSERT_EQ(piped.batches.size(), batches.size());
    for (std::size_t i = 0; i < batches.size(); ++i) {
      EXPECT_EQ(piped.batches[i].predicted, clean_pred[i]) << i;
    }
  }
  EXPECT_GT(obs::Metrics::instance().counter("faults.injected"), 0u);
}

// ---- steady-state invariants -----------------------------------------------

TEST_P(PipelineBothSims, WarmLaunchesCreateNoThreadsAndMissNoArenaBuffers) {
  const ebnn::EbnnConfig cfg;
  const auto weights = ebnn::EbnnWeights::random(cfg, 42);
  const auto batches = ebnn_batches(3, 16);
  ebnn::EbnnHost host(cfg, weights, ebnn::BnMode::HostLut);

  // Two warm-up batches let every staging-buffer capacity reach its fixed
  // point (the arena's free list only ever grows capacities).
  host.run(batches[0], 16);
  host.run(batches[1], 16);

  obs::Metrics::instance().reset();
  host.run(batches[2], 16);
  auto& m = obs::Metrics::instance();
  // Warm launches ride the process-lifetime HostPool: zero threads spawned.
  EXPECT_EQ(m.counter("hostpool.threads_created"), 0u);
  // Every staging buffer came from the arena's free list.
  EXPECT_EQ(m.counter("pool.arena.miss"), 0u);
  EXPECT_GT(m.counter("pool.arena.hit"), 0u);
  obs::Metrics::instance().reset();
}

} // namespace
} // namespace pimdnn
