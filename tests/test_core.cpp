// Tests for the core offload framework and the performance advisor.
#include <gtest/gtest.h>

#include <cstring>

#include "core/advisor.hpp"
#include "core/offloader.hpp"
#include "ebnn/host.hpp"
#include "ebnn/mnist_synth.hpp"

namespace pimdnn::core {
namespace {

using runtime::OptLevel;

/// A simple per-item kernel: output[i] = input[i] * 2 + consts[0].
WorkloadSpec scale_spec(std::uint32_t items_per_dpu = 4) {
  WorkloadSpec spec;
  spec.name = "scale";
  spec.item_in_bytes = 32;
  spec.item_out_bytes = 32;
  spec.items_per_dpu = items_per_dpu;
  spec.consts = {5};
  return spec;
}

ItemKernel scale_kernel() {
  return [](ItemCtx& ic) {
    for (MemSize i = 0; i < 32; ++i) {
      const std::int32_t v = ic.input[i];
      ic.output[i] = static_cast<std::uint8_t>(
          ic.ctx.add(ic.ctx.mul(v, 2, 8), ic.consts[0]));
    }
    ic.ctx.charge_loop(32);
  };
}

std::vector<std::vector<std::uint8_t>> make_items(std::size_t n) {
  std::vector<std::vector<std::uint8_t>> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].resize(32);
    for (std::size_t j = 0; j < 32; ++j) {
      items[i][j] = static_cast<std::uint8_t>(i * 3 + j);
    }
  }
  return items;
}

TEST(Offloader, ComputesCorrectResultsAcrossDpus) {
  Offloader off(scale_spec(), scale_kernel());
  const auto items = make_items(10); // 3 DPUs at 4 items/DPU
  const auto r = off.run(items, 4);
  EXPECT_EQ(r.dpus_used, 3u);
  ASSERT_EQ(r.outputs.size(), 10u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_EQ(r.outputs[i][j],
                static_cast<std::uint8_t>(items[i][j] * 2 + 5))
          << i << "," << j;
    }
  }
  EXPECT_GT(r.launch.wall_cycles, 0u);
}

TEST(Offloader, ResultsIndependentOfTaskletCount) {
  Offloader off(scale_spec(8), scale_kernel());
  const auto items = make_items(16);
  const auto base = off.run(items, 1);
  for (std::uint32_t t : {2u, 3u, 8u}) {
    const auto r = off.run(items, t);
    EXPECT_EQ(r.outputs, base.outputs) << t;
    EXPECT_LE(r.launch.wall_cycles, base.launch.wall_cycles) << t;
  }
}

TEST(Offloader, StridesAreAligned) {
  WorkloadSpec spec = scale_spec();
  spec.item_in_bytes = 13;
  spec.item_out_bytes = 7;
  Offloader off(spec, [](ItemCtx& ic) {
    std::memcpy(ic.output, ic.input, 7);
    ic.ctx.charge_alu(7);
  });
  EXPECT_EQ(off.in_stride(), 16u);
  EXPECT_EQ(off.out_stride(), 8u);
  const auto r = off.run({std::vector<std::uint8_t>(13, 9)}, 1);
  EXPECT_EQ(r.outputs[0], std::vector<std::uint8_t>(7, 9));
}

TEST(Offloader, ScratchIsPerTasklet) {
  WorkloadSpec spec = scale_spec(4);
  spec.scratch_bytes_per_tasklet = 64;
  Offloader off(spec, [](ItemCtx& ic) {
    // Each tasklet stamps its scratch with its item index and verifies it
    // survives to output: overlap between tasklets would corrupt it.
    std::memset(ic.scratch, static_cast<int>(ic.item_index + 1), 64);
    ic.ctx.charge_alu(64);
    for (MemSize i = 0; i < 32; ++i) {
      ic.output[i] = ic.scratch[i];
    }
    ic.ctx.charge_alu(32);
  });
  const auto items = make_items(4);
  const auto r = off.run(items, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.outputs[i][0], static_cast<std::uint8_t>(i + 1));
  }
}

TEST(Offloader, ValidatesSpecAndUsage) {
  WorkloadSpec bad = scale_spec();
  bad.item_in_bytes = 0;
  EXPECT_THROW(Offloader(bad, scale_kernel()), ConfigError);

  WorkloadSpec bad2 = scale_spec();
  bad2.items_per_dpu = 25;
  EXPECT_THROW(Offloader(bad2, scale_kernel()), ConfigError);

  WorkloadSpec huge = scale_spec();
  huge.item_in_bytes = 8 * 1024; // 16 slots x (8K in + 8K out) > 64 KB WRAM
  huge.item_out_bytes = 8 * 1024;
  huge.items_per_dpu = 16;
  EXPECT_THROW(Offloader(huge, scale_kernel()), CapacityError);

  Offloader ok(scale_spec(), scale_kernel());
  EXPECT_THROW(ok.run({}, 1), UsageError);
  EXPECT_THROW(ok.run(make_items(1), 5), UsageError); // > items_per_dpu
  EXPECT_THROW(ok.run({std::vector<std::uint8_t>(3)}, 1), UsageError);
}

TEST(Offloader, LargeItemsMoveInChunkedDmas) {
  WorkloadSpec spec;
  spec.name = "big";
  spec.item_in_bytes = 5000; // > 2048-byte single-DMA limit
  spec.item_out_bytes = 8;
  spec.items_per_dpu = 2;
  Offloader off(spec, [](ItemCtx& ic) {
    std::uint32_t sum = 0;
    for (MemSize i = 0; i < 5000; ++i) {
      sum += ic.input[i];
    }
    ic.ctx.charge_alu(5000);
    std::memcpy(ic.output, &sum, 4);
  });
  std::vector<std::uint8_t> item(5000, 1);
  const auto r = off.run({item}, 1);
  std::uint32_t sum = 0;
  std::memcpy(&sum, r.outputs[0].data(), 4);
  EXPECT_EQ(sum, 5000u);
  // The 5000-byte input needs 3 chunked DMAs.
  EXPECT_GE(r.launch.per_dpu[0].tasklets[0].dma_transfers, 4u);
}

TEST(Advisor, FlagsFloatSubroutines) {
  ebnn::EbnnConfig cfg;
  cfg.filters = 8;
  const auto w = ebnn::EbnnWeights::random(cfg, 3);
  ebnn::EbnnHost host(cfg, w, ebnn::BnMode::SoftFloat);
  const auto r =
      host.run(ebnn::images_only(ebnn::make_synthetic_mnist(4, 4)), 4);
  const auto findings = advise(r.launch, 4, OptLevel::O3);
  bool flagged_float = false;
  bool flagged_threads = false;
  for (const auto& f : findings) {
    if (f.id == "float-subroutines") flagged_float = true;
    if (f.id == "under-threaded") flagged_threads = true;
  }
  EXPECT_TRUE(flagged_float);
  EXPECT_TRUE(flagged_threads); // 4 tasklets < 11 stages
}

TEST(Advisor, CleanRunReportsOk) {
  // A quantized, WRAM-resident, fully threaded, -O3 kernel produces the
  // all-clear finding.
  Offloader off(scale_spec(16), scale_kernel());
  const auto r = off.run(make_items(16), 16);
  const auto findings = advise(r.launch, 16, OptLevel::O3);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].id, "ok");
}

TEST(Advisor, LutEbnnStillFlagsResidualMulsi3) {
  // Even the LUT architecture keeps the index __mulsi3 the thesis could
  // not remove (Figure 4.3b); on a large batch the advisor points at it.
  ebnn::EbnnConfig cfg;
  cfg.filters = 8;
  const auto w = ebnn::EbnnWeights::random(cfg, 3);
  ebnn::EbnnHost host(cfg, w, ebnn::BnMode::HostLut);
  const auto r =
      host.run(ebnn::images_only(ebnn::make_synthetic_mnist(16, 4)), 16);
  const auto findings = advise(r.launch, 16, OptLevel::O3);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].id, "mulsi3-heavy");
  // The float warning must be gone (the LUT removed the float block).
  EXPECT_EQ(r.launch.profile.float_total(), 0u);
}

TEST(Advisor, FlagsO0AndMramBound) {
  // A DMA-heavy kernel at -O0 triggers both remaining diagnostics.
  auto set = runtime::DpuSet::allocate(1);
  sim::DpuProgram p;
  p.name = "dma_heavy";
  p.symbols = {{"m", sim::MemKind::Mram, 1 << 20},
               {"w", sim::MemKind::Wram, 2048}};
  p.entry = [](sim::TaskletCtx& ctx) {
    auto buf = ctx.wram_span<std::uint8_t>("w");
    for (int i = 0; i < 256; ++i) {
      ctx.mram_read(buf.data(), ctx.mram_addr("m") + i * 2048, 2048);
      ctx.charge_alu(4);
    }
  };
  set.load(p);
  runtime::LaunchStats stats;
  stats.per_dpu.push_back(set.dpu(0).launch(11, OptLevel::O0));
  stats.profile.merge(stats.per_dpu[0].profile);
  const auto findings = advise(stats, 11, OptLevel::O0);
  bool mram = false;
  bool o0 = false;
  for (const auto& f : findings) {
    if (f.id == "mram-bound") mram = true;
    if (f.id == "no-optimization") o0 = true;
  }
  EXPECT_TRUE(mram);
  EXPECT_TRUE(o0);
}

TEST(Advisor, RenderIncludesSeverityTags) {
  const std::vector<Finding> fs = {
      {Severity::Warning, "x", "message one"},
      {Severity::Info, "y", "message two"},
  };
  const auto s = render(fs);
  EXPECT_NE(s.find("[warning] x"), std::string::npos);
  EXPECT_NE(s.find("[info]"), std::string::npos);
  EXPECT_NE(s.find("message two"), std::string::npos);
}

} // namespace
} // namespace pimdnn::core
