// Fast-path execution mode tests: SimMode parsing/plumbing, the dual-run
// fast/interp equivalence contract (bit-exact memory, cycle-exact stats,
// identical subroutine profiles) on the eBNN kernels, end-to-end parity
// through EbnnHost / DeepEbnnHost including fixed-seed fault injection and
// the double-buffered pipeline, plus regression tests for the three
// interpreter fixes: per-launch thread crops in the barrier path (warm
// launches must create zero threads), integer-wrap bounds bypass in
// host_write/host_read, and non-atomic Dpu::load (a failed load must leave
// the prior program launchable).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/sim_mode.hpp"
#include "ebnn/deep.hpp"
#include "ebnn/dpu_kernel.hpp"
#include "ebnn/host.hpp"
#include "ebnn/lut.hpp"
#include "ebnn/mnist_synth.hpp"
#include "ebnn/model.hpp"
#include "obs/metrics.hpp"
#include "runtime/dpu_pool.hpp"
#include "runtime/dpu_set.hpp"
#include "runtime/kernel_session.hpp"
#include "sim/dpu.hpp"
#include "sim/fault.hpp"

namespace pimdnn {
namespace {

using ebnn::BnMode;
using ebnn::ConvKernel;
using ebnn::EbnnConfig;
using ebnn::EbnnWeights;
using ebnn::Image;
using runtime::DpuPool;
using runtime::DpuSet;
using runtime::KernelSession;
using runtime::LaunchStats;
using runtime::OptLevel;
using sim::Dpu;
using sim::DpuRunStats;
using sim::FaultConfig;
using sim::MemKind;
using sim::Subroutine;
using sim::TaskletCtx;

/// The default mode and the fault plan are process-global: pin both to a
/// known state around every test so order does not matter.
class FastModeTest : public ::testing::Test {
protected:
  void SetUp() override {
    set_default_sim_mode(SimMode::Interp);
    sim::set_fault_config(FaultConfig{});
  }
  void TearDown() override {
    set_default_sim_mode(SimMode::Interp);
    sim::set_fault_config(FaultConfig{});
  }
};

/// Minimal non-barrier program used by the plumbing/regression tests:
/// every tasklet stamps a recognizable value into its MRAM slot. The fast
/// twin is intentionally identical so both executors agree.
sim::DpuProgram probe_program(const std::string& name = "probe") {
  sim::DpuProgram p;
  p.name = name;
  p.symbols = {{"out", MemKind::Mram, 256},
               {"buf", MemKind::Wram, 256},
               {"data", MemKind::Mram, 64}};
  const auto body = [](TaskletCtx& ctx) {
    auto buf = ctx.wram_span<std::uint64_t>("buf");
    buf[ctx.id()] = 100 + ctx.id();
    ctx.charge_alu(1);
    ctx.mram_write(ctx.mram_addr("out") + ctx.id() * 8, &buf[ctx.id()], 8);
  };
  p.entry = body;
  p.fast_entry = body;
  return p;
}

/// Barrier program: each tasklet publishes id+1 into shared WRAM, waits,
/// then writes its neighbour's value to MRAM — only correct when the
/// barrier is a real happens-before edge across concurrent tasklets.
sim::DpuProgram barrier_program() {
  sim::DpuProgram p;
  p.name = "barrier_probe";
  p.symbols = {{"out", MemKind::Mram, 256},
               {"slots", MemKind::Wram, 128},
               {"stage", MemKind::Wram, 256}};
  p.uses_barrier = true;
  p.entry = [](TaskletCtx& ctx) {
    auto slots = ctx.wram_span<std::uint32_t>("slots");
    slots[ctx.id()] = ctx.id() + 1;
    ctx.charge_alu(1);
    ctx.barrier_wait();
    auto stage = ctx.wram_span<std::uint64_t>("stage");
    stage[ctx.id()] = slots[(ctx.id() + 1) % ctx.n_tasklets()];
    ctx.charge_alu(1);
    ctx.mram_write(ctx.mram_addr("out") + ctx.id() * 8, &stage[ctx.id()], 8);
  };
  return p;
}

// ---- SimMode parsing ------------------------------------------------------

TEST_F(FastModeTest, ParseGrammar) {
  EXPECT_EQ(parse_sim_mode("interp"), SimMode::Interp);
  EXPECT_EQ(parse_sim_mode("fast"), SimMode::Fast);
  EXPECT_THROW(parse_sim_mode(""), ConfigError);
  EXPECT_THROW(parse_sim_mode("FAST"), ConfigError);
  EXPECT_THROW(parse_sim_mode("turbo"), ConfigError);
  EXPECT_STREQ(sim_mode_name(SimMode::Interp), "interp");
  EXPECT_STREQ(sim_mode_name(SimMode::Fast), "fast");
}

TEST_F(FastModeTest, DefaultModeFeedsLaunchDefaultArgument) {
  Dpu dpu;
  dpu.load(probe_program());
  EXPECT_FALSE(dpu.launch(2).fast_path);
  set_default_sim_mode(SimMode::Fast);
  EXPECT_TRUE(dpu.launch(2).fast_path);
  set_default_sim_mode(SimMode::Interp);
  EXPECT_FALSE(dpu.launch(2).fast_path);
}

// ---- regression: integer-wrap bounds bypass in host_write/host_read ------

TEST_F(FastModeTest, HostAccessWrapOffsetThrows) {
  Dpu dpu;
  dpu.load(probe_program());
  std::uint64_t payload[2] = {0x1122334455667788ull, 0x99aabbccddeeff00ull};
  dpu.host_write("data", 0, payload, 16); // in bounds: fine

  constexpr MemSize kWrap = std::numeric_limits<MemSize>::max() - 7;
  // offset + size wraps to 8, which the pre-fix `offset + size > s.size`
  // check accepted — it must throw, not write out of bounds.
  EXPECT_THROW(dpu.host_write("data", kWrap, payload, 16), OutOfBoundsError);
  EXPECT_THROW(dpu.host_write("data", 60, payload, 8), OutOfBoundsError);
  EXPECT_THROW(dpu.host_write("data", 0, payload, 72), OutOfBoundsError);

  std::uint64_t back[2] = {0, 0};
  EXPECT_THROW(dpu.host_read("data", kWrap, back, 16), OutOfBoundsError);
  EXPECT_THROW(dpu.host_read("data", 64, back, 8), OutOfBoundsError);
  dpu.host_read("data", 0, back, 16);
  EXPECT_EQ(back[0], payload[0]);
  EXPECT_EQ(back[1], payload[1]);
}

// ---- regression: a failed load must leave the prior program launchable ---

TEST_F(FastModeTest, FailedLoadLeavesPriorProgramLaunchable) {
  Dpu dpu;
  dpu.load(probe_program());
  const std::uint64_t marker = 0xdeadbeefcafef00dull;
  dpu.host_write("data", 0, &marker, 8);

  const auto check_intact = [&] {
    ASSERT_TRUE(dpu.has_symbol("data"));
    ASSERT_TRUE(dpu.has_symbol("out"));
    std::uint64_t back = 0;
    dpu.host_read("data", 0, &back, 8);
    EXPECT_EQ(back, marker);
    DpuRunStats st = dpu.launch(3);
    EXPECT_GT(st.total_slots, 0u);
    std::uint64_t v = 0;
    dpu.host_read("out", 16, &v, 8);
    EXPECT_EQ(v, 102u);
  };

  // Direction 1: symbol placement overflows MRAM.
  sim::DpuProgram big;
  big.name = "mram_overflow";
  big.symbols = {{"huge", MemKind::Mram, dpu.config().mram_bytes + 8}};
  big.entry = [](TaskletCtx&) {};
  EXPECT_THROW(dpu.load(big), CapacityError);
  check_intact();

  // Direction 1b: a size so large that offset + size wraps.
  sim::DpuProgram wrap;
  wrap.name = "wrap_overflow";
  wrap.symbols = {{"a", MemKind::Mram, 64},
                  {"b", MemKind::Mram,
                   std::numeric_limits<MemSize>::max() - 32}};
  wrap.entry = [](TaskletCtx&) {};
  EXPECT_THROW(dpu.load(wrap), CapacityError);
  check_intact();

  // Direction 2: symbols place fine but the code footprint overflows IRAM
  // (pre-fix, IRAM was loaded before symbol bookkeeping committed; either
  // order must leave the old program fully intact on failure).
  sim::DpuProgram fat = probe_program("iram_overflow");
  fat.iram_bytes = dpu.config().iram_bytes + 8;
  EXPECT_THROW(dpu.load(fat), CapacityError);
  check_intact();

  // Direction 3: WRAM overflow.
  sim::DpuProgram wbig;
  wbig.name = "wram_overflow";
  wbig.symbols = {{"w", MemKind::Wram, dpu.config().wram_bytes + 8}};
  wbig.entry = [](TaskletCtx&) {};
  EXPECT_THROW(dpu.load(wbig), CapacityError);
  check_intact();
}

// ---- regression: barrier launches must not crop threads per launch -------

TEST_F(FastModeTest, WarmBarrierLaunchesCreateZeroThreads) {
  constexpr std::uint32_t kTasklets = 8;
  DpuSet set = DpuSet::allocate(1);
  set.load(barrier_program());

  const auto check_result = [&] {
    for (std::uint32_t t = 0; t < kTasklets; ++t) {
      std::uint64_t v = 0;
      set.dpu(0).host_read("out", t * 8, &v, 8);
      EXPECT_EQ(v, (t + 1) % kTasklets + 1) << "tasklet " << t;
    }
  };

  // Warm-up: the HostPool grows its persistent lane set on first demand.
  set.launch(kTasklets);
  set.launch(kTasklets);
  check_result();

  const std::uint64_t before =
      obs::Metrics::instance().counter("hostpool.threads_created");
  for (int i = 0; i < 4; ++i) {
    set.launch(kTasklets);
  }
  check_result();
  EXPECT_EQ(obs::Metrics::instance().counter("hostpool.threads_created"),
            before)
      << "warm barrier launches must reuse the persistent lanes";
}

TEST_F(FastModeTest, BarrierScheduleVariantsStayCorrect) {
  DpuSet set = DpuSet::allocate(1);
  set.load(barrier_program());
  Dpu& dpu = set.dpu(0);
  DpuRunStats st = dpu.launch(6, OptLevel::O3,
                              sim::TaskletSchedule::StaggeredReverse);
  EXPECT_FALSE(st.fast_path);
  for (std::uint32_t t = 0; t < 6; ++t) {
    std::uint64_t v = 0;
    dpu.host_read("out", t * 8, &v, 8);
    EXPECT_EQ(v, (t + 1) % 6 + 1);
  }
}

// ---- executor selection rules --------------------------------------------

TEST_F(FastModeTest, ProgramWithoutFastEntryInterpretsUnderFastMode) {
  sim::DpuProgram p = probe_program("no_twin");
  p.fast_entry = nullptr;
  Dpu dpu;
  dpu.load(p);
  DpuRunStats st = dpu.launch(4, OptLevel::O3,
                              sim::TaskletSchedule::InOrder, SimMode::Fast);
  EXPECT_FALSE(st.fast_path);
  std::uint64_t v = 0;
  dpu.host_read("out", 24, &v, 8);
  EXPECT_EQ(v, 103u);
}

TEST_F(FastModeTest, BarrierProgramIgnoresFastMode) {
  sim::DpuProgram p = barrier_program();
  // Even with a (nonsensical) fast twin attached, barrier programs must
  // keep the threaded interpreter: the twin would break happens-before.
  p.fast_entry = [](TaskletCtx&) { FAIL() << "fast twin ran on a barrier"; };
  DpuSet set = DpuSet::allocate(1);
  set.dpu(0).load(p);
  DpuRunStats st = set.dpu(0).launch(
      4, OptLevel::O3, sim::TaskletSchedule::InOrder, SimMode::Fast);
  EXPECT_FALSE(st.fast_path);
}

// ---- mode plumbing through DpuSet / DpuPool / KernelSession --------------

TEST_F(FastModeTest, PoolAndSessionInheritAndOverrideMode) {
  set_default_sim_mode(SimMode::Fast);
  DpuPool pool;
  set_default_sim_mode(SimMode::Interp);
  EXPECT_EQ(pool.sim_mode(), SimMode::Fast); // snapshot at construction

  KernelSession session(pool, "probe", 1, [] { return probe_program(); });
  EXPECT_EQ(session.sim_mode(), SimMode::Fast);
  ASSERT_TRUE(session.launch(2));
  LaunchStats ls = session.finish();
  ASSERT_EQ(ls.per_dpu.size(), 1u);
  EXPECT_TRUE(ls.per_dpu[0].fast_path);

  // Mode survives reserve() growth (set re-allocation)...
  pool.reserve(8);
  EXPECT_EQ(pool.set().sim_mode(), SimMode::Fast);

  // ...and an override applies to the live set.
  pool.set_sim_mode(SimMode::Interp);
  KernelSession s2(pool, "probe", 1, [] { return probe_program(); });
  ASSERT_TRUE(s2.launch(2));
  LaunchStats ls2 = s2.finish();
  ASSERT_EQ(ls2.per_dpu.size(), 1u);
  EXPECT_FALSE(ls2.per_dpu[0].fast_path);
}

// ---- the dual-run equivalence contract on the eBNN kernel ----------------

void expect_stats_equal(const DpuRunStats& a, const DpuRunStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.total_slots, b.total_slots);
  EXPECT_EQ(a.total_dma_cycles, b.total_dma_cycles);
  EXPECT_EQ(a.total_dma_bytes, b.total_dma_bytes);
  ASSERT_EQ(a.tasklets.size(), b.tasklets.size());
  for (std::size_t t = 0; t < a.tasklets.size(); ++t) {
    EXPECT_EQ(a.tasklets[t].slots, b.tasklets[t].slots) << "tasklet " << t;
    EXPECT_EQ(a.tasklets[t].dma_cycles, b.tasklets[t].dma_cycles)
        << "tasklet " << t;
    EXPECT_EQ(a.tasklets[t].dma_transfers, b.tasklets[t].dma_transfers)
        << "tasklet " << t;
    EXPECT_EQ(a.tasklets[t].dma_bytes, b.tasklets[t].dma_bytes)
        << "tasklet " << t;
  }
  for (std::size_t s = 0; s < static_cast<std::size_t>(Subroutine::kCount);
       ++s) {
    const auto sub = static_cast<Subroutine>(s);
    EXPECT_EQ(a.profile.occurrences(sub), b.profile.occurrences(sub))
        << sim::subroutine_name(sub);
  }
}

/// One raw-DPU eBNN run: loads the program, uploads weights + images the
/// way EbnnHost does, launches under `mode`, and captures every symbol's
/// bytes afterwards.
struct RunCapture {
  DpuRunStats stats;
  std::map<std::string, std::vector<std::uint8_t>> mem;
};

RunCapture run_ebnn_once(const EbnnConfig& cfg, const EbnnWeights& w,
                         BnMode bn, ConvKernel kernel,
                         const std::vector<Image>& images,
                         std::uint32_t n_tasklets, OptLevel opt,
                         SimMode mode) {
  const ebnn::EbnnLayout layout = ebnn::ebnn_layout(cfg);
  Dpu dpu;
  dpu.load(ebnn::make_ebnn_program(cfg, bn, kernel));

  dpu.host_write(ebnn::symbols::kConvWeights, 0, w.conv_bits.data(),
                 w.conv_bits.size() * sizeof(std::uint32_t));
  if (bn == BnMode::HostLut) {
    const ebnn::BnBinactLut lut = ebnn::build_bn_binact_lut(cfg, w.bn);
    dpu.host_write(ebnn::symbols::kBnLut, 0, lut.table.data(),
                   lut.table.size());
  } else {
    std::vector<float> bn_vec;
    bn_vec.reserve(5 * static_cast<std::size_t>(cfg.filters));
    for (const auto* v : {&w.bn.w0, &w.bn.w1, &w.bn.w2, &w.bn.w3, &w.bn.w4}) {
      bn_vec.insert(bn_vec.end(), v->begin(), v->end());
    }
    dpu.host_write(ebnn::symbols::kBnParams, 0, bn_vec.data(),
                   bn_vec.size() * sizeof(float));
  }
  const std::uint64_t n_images = images.size();
  dpu.host_write(ebnn::symbols::kMeta, 0, &n_images, sizeof(n_images));
  for (std::size_t i = 0; i < images.size(); ++i) {
    dpu.host_write(ebnn::symbols::kImages, i * layout.image_stride,
                   images[i].data(), images[i].size());
  }

  RunCapture out;
  out.stats =
      dpu.launch(n_tasklets, opt, sim::TaskletSchedule::InOrder, mode);
  for (const char* name :
       {ebnn::symbols::kImages, ebnn::symbols::kResults,
        ebnn::symbols::kMeta, ebnn::symbols::kConvWeights,
        ebnn::symbols::kBnLut, ebnn::symbols::kBnParams}) {
    if (!dpu.has_symbol(name)) {
      continue;
    }
    const sim::SymbolInfo& info = dpu.symbol(name);
    std::vector<std::uint8_t> bytes(info.size);
    dpu.host_read(name, 0, bytes.data(), bytes.size());
    out.mem.emplace(name, std::move(bytes));
  }
  return out;
}

void cross_check_ebnn(BnMode bn, ConvKernel kernel, std::size_t n_images,
                      std::uint32_t n_tasklets, OptLevel opt) {
  SCOPED_TRACE(std::string("bn=") +
               (bn == BnMode::HostLut ? "lut" : "softfloat") + " kernel=" +
               (kernel == ConvKernel::PackedRows ? "packed" : "scalar") +
               " images=" + std::to_string(n_images) +
               " tasklets=" + std::to_string(n_tasklets));
  EbnnConfig cfg;
  const EbnnWeights w = EbnnWeights::random(cfg, 7u + n_images);
  const std::vector<Image> images =
      ebnn::images_only(ebnn::make_synthetic_mnist(n_images, 99));

  RunCapture interp =
      run_ebnn_once(cfg, w, bn, kernel, images, n_tasklets, opt,
                    SimMode::Interp);
  RunCapture fast = run_ebnn_once(cfg, w, bn, kernel, images, n_tasklets,
                                  opt, SimMode::Fast);

  EXPECT_FALSE(interp.stats.fast_path);
  EXPECT_TRUE(fast.stats.fast_path);
  expect_stats_equal(interp.stats, fast.stats);
  ASSERT_EQ(interp.mem.size(), fast.mem.size());
  for (const auto& [name, bytes] : interp.mem) {
    ASSERT_TRUE(fast.mem.count(name)) << name;
    EXPECT_EQ(bytes, fast.mem.at(name)) << "symbol " << name;
  }
}

TEST_F(FastModeTest, EbnnDualRunBitAndCycleExact) {
  // One tasklet per image, idle tasklets, and the strided multi-image-per-
  // tasklet case, across every BnMode x ConvKernel combination.
  cross_check_ebnn(BnMode::SoftFloat, ConvKernel::Scalar, 3, 5,
                   OptLevel::O3);
  cross_check_ebnn(BnMode::SoftFloat, ConvKernel::PackedRows, 5, 3,
                   OptLevel::O3);
  cross_check_ebnn(BnMode::HostLut, ConvKernel::Scalar, 4, 4, OptLevel::O3);
  cross_check_ebnn(BnMode::HostLut, ConvKernel::PackedRows, 16, 16,
                   OptLevel::O3);
}

TEST_F(FastModeTest, EbnnDualRunBitAndCycleExactAtO0) {
  // The cost model changes per OptLevel; the twin charges through the same
  // model, so equivalence must hold at O0 too.
  cross_check_ebnn(BnMode::SoftFloat, ConvKernel::Scalar, 2, 2,
                   OptLevel::O0);
  cross_check_ebnn(BnMode::HostLut, ConvKernel::PackedRows, 3, 2,
                   OptLevel::O0);
}

// ---- end-to-end parity through the host applications ---------------------

TEST_F(FastModeTest, EbnnHostEndToEndParity) {
  EbnnConfig cfg;
  EbnnWeights w = EbnnWeights::random(cfg, 42);
  const std::vector<Image> images =
      ebnn::images_only(ebnn::make_synthetic_mnist(24, 5));

  set_default_sim_mode(SimMode::Interp);
  ebnn::EbnnHost interp_host(cfg, w, BnMode::HostLut, sim::default_config(),
                             ConvKernel::PackedRows);
  ebnn::EbnnBatchResult ri = interp_host.run(images, 16);

  set_default_sim_mode(SimMode::Fast);
  ebnn::EbnnHost fast_host(cfg, w, BnMode::HostLut, sim::default_config(),
                           ConvKernel::PackedRows);
  ebnn::EbnnBatchResult rf = fast_host.run(images, 16);

  EXPECT_EQ(ri.predicted, rf.predicted);
  ASSERT_EQ(ri.features.size(), rf.features.size());
  for (std::size_t i = 0; i < ri.features.size(); ++i) {
    EXPECT_EQ(ri.features[i], rf.features[i]) << "image " << i;
  }
  EXPECT_EQ(ri.launch.wall_cycles, rf.launch.wall_cycles);
  EXPECT_EQ(ri.launch.total_cycles, rf.launch.total_cycles);
  ASSERT_EQ(ri.launch.per_dpu.size(), rf.launch.per_dpu.size());
  for (std::size_t d = 0; d < ri.launch.per_dpu.size(); ++d) {
    EXPECT_FALSE(ri.launch.per_dpu[d].fast_path);
    EXPECT_TRUE(rf.launch.per_dpu[d].fast_path);
    expect_stats_equal(ri.launch.per_dpu[d], rf.launch.per_dpu[d]);
  }
}

TEST_F(FastModeTest, DeepEbnnEndToEndParity) {
  ebnn::DeepEbnnConfig cfg;
  cfg.blocks = {{8}, {8}};
  ebnn::DeepEbnnWeights w = ebnn::DeepEbnnWeights::random(cfg, 11);
  const std::vector<Image> images =
      ebnn::images_only(ebnn::make_synthetic_mnist(10, 3));

  set_default_sim_mode(SimMode::Interp);
  ebnn::DeepEbnnHost interp_host(cfg, w);
  ebnn::DeepEbnnBatchResult ri = interp_host.run(images);

  set_default_sim_mode(SimMode::Fast);
  ebnn::DeepEbnnHost fast_host(cfg, w);
  ebnn::DeepEbnnBatchResult rf = fast_host.run(images);

  EXPECT_EQ(ri.predicted, rf.predicted);
  ASSERT_EQ(ri.features.size(), rf.features.size());
  for (std::size_t i = 0; i < ri.features.size(); ++i) {
    EXPECT_EQ(ri.features[i], rf.features[i]) << "image " << i;
  }
  EXPECT_EQ(ri.launch.wall_cycles, rf.launch.wall_cycles);
  EXPECT_EQ(ri.launch.total_cycles, rf.launch.total_cycles);
  ASSERT_EQ(ri.launch.per_dpu.size(), rf.launch.per_dpu.size());
  for (std::size_t d = 0; d < ri.launch.per_dpu.size(); ++d) {
    EXPECT_FALSE(ri.launch.per_dpu[d].fast_path);
    EXPECT_TRUE(rf.launch.per_dpu[d].fast_path);
    expect_stats_equal(ri.launch.per_dpu[d], rf.launch.per_dpu[d]);
  }
}

// ---- fixed-seed fault injection must behave identically in both modes ----

TEST_F(FastModeTest, FixedSeedFaultParity) {
  EbnnConfig cfg;
  EbnnWeights w = EbnnWeights::random(cfg, 21);
  const std::vector<Image> images =
      ebnn::images_only(ebnn::make_synthetic_mnist(8, 17));
  const char* spec = "seed=42,launch=0.3,xfer=0.05";

  const auto run_mode = [&](SimMode mode) {
    // Re-applying the config resets every per-(DPU, kind) draw ordinal, so
    // both runs see the identical fault sequence.
    sim::set_fault_config(sim::parse_fault_config(spec));
    set_default_sim_mode(mode);
    ebnn::EbnnHost host(cfg, w, BnMode::HostLut, sim::default_config(),
                        ConvKernel::PackedRows);
    return host.run(images, 8);
  };

  ebnn::EbnnBatchResult ri = run_mode(SimMode::Interp);
  ebnn::EbnnBatchResult rf = run_mode(SimMode::Fast);
  sim::set_fault_config(FaultConfig{});

  EXPECT_EQ(ri.predicted, rf.predicted);
  ASSERT_EQ(ri.features.size(), rf.features.size());
  for (std::size_t i = 0; i < ri.features.size(); ++i) {
    EXPECT_EQ(ri.features[i], rf.features[i]) << "image " << i;
  }
  EXPECT_EQ(ri.launch.retries, rf.launch.retries);
  EXPECT_EQ(ri.launch.faults_absorbed, rf.launch.faults_absorbed);
  EXPECT_EQ(ri.launch.quarantined, rf.launch.quarantined);
  EXPECT_EQ(ri.launch.retry_cycles, rf.launch.retry_cycles);
  EXPECT_EQ(ri.launch.cpu_fallback, rf.launch.cpu_fallback);
}

// ---- the double-buffered pipeline in fast mode ---------------------------

TEST_F(FastModeTest, PipelinedExecutionParityInFastMode) {
  EbnnConfig cfg;
  EbnnWeights w = EbnnWeights::random(cfg, 33);
  std::vector<std::vector<Image>> batches;
  for (int b = 0; b < 3; ++b) {
    batches.push_back(
        ebnn::images_only(ebnn::make_synthetic_mnist(10, 100 + b)));
  }

  set_default_sim_mode(SimMode::Fast);
  ebnn::EbnnHost piped(cfg, w, BnMode::HostLut, sim::default_config(),
                       ConvKernel::PackedRows);
  ebnn::EbnnPipelineResult pr = piped.run_pipelined(batches, 10);

  ebnn::EbnnHost serial(cfg, w, BnMode::HostLut, sim::default_config(),
                        ConvKernel::PackedRows);
  ASSERT_EQ(pr.batches.size(), batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    ebnn::EbnnBatchResult rs = serial.run(batches[b], 10);
    EXPECT_EQ(pr.batches[b].predicted, rs.predicted) << "batch " << b;
    ASSERT_EQ(pr.batches[b].features.size(), rs.features.size());
    for (std::size_t i = 0; i < rs.features.size(); ++i) {
      EXPECT_EQ(pr.batches[b].features[i], rs.features[i])
          << "batch " << b << " image " << i;
    }
    for (const DpuRunStats& st : pr.batches[b].launch.per_dpu) {
      EXPECT_TRUE(st.fast_path);
    }
  }
}

} // namespace
} // namespace pimdnn
