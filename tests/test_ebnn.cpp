// eBNN tests: LUT construction (Algorithm 1), golden model self-checks,
// DPU-vs-reference bit-exact agreement in both BN modes, host orchestration
// (batching, padding, tasklet sweep), subroutine-profile shape (Fig 4.3),
// and the LUT speedup (Fig 4.4).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ebnn/dpu_kernel.hpp"
#include "ebnn/host.hpp"
#include "ebnn/lut.hpp"
#include "ebnn/mnist_synth.hpp"
#include "ebnn/train.hpp"
#include "ebnn/model.hpp"

namespace pimdnn::ebnn {
namespace {

EbnnConfig small_config() {
  EbnnConfig cfg;
  cfg.filters = 8;
  return cfg;
}

TEST(EbnnConfig, DerivedDimensions) {
  EbnnConfig cfg;
  EXPECT_EQ(cfg.conv_h(), 26);
  EXPECT_EQ(cfg.conv_w(), 26);
  EXPECT_EQ(cfg.pool_h(), 13);
  EXPECT_EQ(cfg.pool_w(), 13);
  EXPECT_EQ(cfg.feature_bits(), 16 * 169);
  EXPECT_EQ(cfg.conv_min(), -9);
  EXPECT_EQ(cfg.conv_max(), 9);
}

TEST(EbnnWeights, DeterministicAndWellFormed) {
  const EbnnConfig cfg = small_config();
  const auto a = EbnnWeights::random(cfg, 42);
  const auto b = EbnnWeights::random(cfg, 42);
  EXPECT_EQ(a.conv_bits, b.conv_bits);
  EXPECT_EQ(a.fc, b.fc);
  EXPECT_EQ(a.bn.channels(), static_cast<std::size_t>(cfg.filters));
  for (float w2 : a.bn.w2) {
    EXPECT_GE(std::abs(w2), 0.5f); // divisor stays away from zero
  }
  for (auto bits : a.conv_bits) {
    EXPECT_EQ(bits >> cfg.taps(), 0u); // only tap bits set
  }
}

TEST(Lut, MatchesFloatBnBinactForAllInputs) {
  // The core property of Algorithm 1: for every possible conv-pool value
  // and every filter, the LUT bit equals the float BN-BinAct bit.
  const EbnnConfig cfg = small_config();
  for (std::uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
    const auto w = EbnnWeights::random(cfg, seed);
    const auto lut = build_bn_binact_lut(cfg, w.bn);
    EXPECT_EQ(lut.rows(), 19);
    EXPECT_EQ(lut.bytes(), 19u * 8u);
    for (int v = cfg.conv_min(); v <= cfg.conv_max(); ++v) {
      for (int f = 0; f < cfg.filters; ++f) {
        const float bnv =
            w.bn.apply(static_cast<float>(v), static_cast<std::size_t>(f));
        EXPECT_EQ(lut.lookup(v, f), nn::binact(bnv))
            << "seed=" << seed << " v=" << v << " f=" << f;
      }
    }
  }
}

TEST(Lut, RejectsMismatchedFilters) {
  EbnnConfig cfg = small_config();
  auto w = EbnnWeights::random(cfg, 1);
  cfg.filters = 4; // now inconsistent with bn params
  EXPECT_THROW(build_bn_binact_lut(cfg, w.bn), UsageError);
}

TEST(Reference, ConvOutputsWithinTapRange) {
  const EbnnConfig cfg = small_config();
  const auto w = EbnnWeights::random(cfg, 5);
  const auto data = make_synthetic_mnist(3, 11);
  EbnnReference ref(cfg, w);
  for (const auto& li : data) {
    const auto a = ref.infer(li.pixels.data());
    for (int v : a.conv) {
      EXPECT_GE(v, cfg.conv_min());
      EXPECT_LE(v, cfg.conv_max());
      // Parity: 9 taps of +-1 always sum to an odd number.
      EXPECT_EQ((v + 9) % 2, 0);
    }
    EXPECT_EQ(a.probs.size(), 10u);
    EXPECT_GE(a.predicted, 0);
    EXPECT_LT(a.predicted, 10);
  }
}

TEST(Reference, PoolIsMaxOfConvWindow) {
  const EbnnConfig cfg = small_config();
  const auto w = EbnnWeights::random(cfg, 6);
  const auto data = make_synthetic_mnist(1, 3);
  EbnnReference ref(cfg, w);
  const auto a = ref.infer(data[0].pixels.data());
  const int CW = cfg.conv_w();
  const int PW = cfg.pool_w();
  for (int f = 0; f < cfg.filters; ++f) {
    for (int py = 0; py < cfg.pool_h(); ++py) {
      for (int px = 0; px < PW; ++px) {
        int mx = -100;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            mx = std::max(mx, a.conv[(f * cfg.conv_h() + py * 2 + dy) * CW +
                                     px * 2 + dx]);
          }
        }
        EXPECT_EQ(a.pooled[(f * cfg.pool_h() + py) * PW + px], mx);
      }
    }
  }
}

class EbnnDpuAgreement : public ::testing::TestWithParam<BnMode> {};

TEST_P(EbnnDpuAgreement, FeaturesAndPredictionsMatchGoldenModel) {
  const EbnnConfig cfg = small_config();
  auto w = EbnnWeights::random(cfg, 21);
  EbnnReference ref(cfg, w);
  const auto data = make_synthetic_mnist(20, 31); // spans 2 DPUs
  EbnnHost host(cfg, w, GetParam());
  const auto result = host.run(images_only(data), 16);
  ASSERT_EQ(result.predicted.size(), data.size());
  ASSERT_EQ(result.features.size(), data.size());
  EXPECT_EQ(result.dpus_used, 2u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto golden = ref.infer(data[i].pixels.data());
    EXPECT_EQ(result.features[i], golden.feature) << "image " << i;
    EXPECT_EQ(result.predicted[i], golden.predicted) << "image " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(BothBnModes, EbnnDpuAgreement,
                         ::testing::Values(BnMode::SoftFloat, BnMode::HostLut),
                         [](const auto& info) {
                           return info.param == BnMode::SoftFloat
                                      ? "SoftFloat"
                                      : "HostLut";
                         });

class EbnnTaskletSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EbnnTaskletSweep, ResultsIndependentOfTaskletCount) {
  const EbnnConfig cfg = small_config();
  auto w = EbnnWeights::random(cfg, 22);
  const auto data = make_synthetic_mnist(16, 32);
  EbnnHost host(cfg, w, BnMode::HostLut);
  const auto base = host.run(images_only(data), 1);
  const auto result = host.run(images_only(data), GetParam());
  EXPECT_EQ(result.predicted, base.predicted);
  EXPECT_EQ(result.features, base.features);
}

INSTANTIATE_TEST_SUITE_P(Tasklets, EbnnTaskletSweep,
                         ::testing::Values(2u, 3u, 4u, 8u, 11u, 16u));

TEST(EbnnPackedKernel, BitIdenticalToScalarAndFaster) {
  // The word-parallel gather (§4.3.4's "most optimal mapping" direction)
  // must produce identical features at lower cycle cost.
  const EbnnConfig cfg; // full 16-filter model
  auto w = EbnnWeights::random(cfg, 71);
  const auto data = make_synthetic_mnist(16, 72);
  EbnnHost scalar(cfg, w, BnMode::HostLut, sim::default_config(),
                  ConvKernel::Scalar);
  EbnnHost packed(cfg, w, BnMode::HostLut, sim::default_config(),
                  ConvKernel::PackedRows);
  const auto rs = scalar.run(images_only(data), 16);
  const auto rp = packed.run(images_only(data), 16);
  EXPECT_EQ(rs.features, rp.features);
  EXPECT_EQ(rs.predicted, rp.predicted);
  EXPECT_LT(rp.launch.wall_cycles, rs.launch.wall_cycles);
  const double gain = static_cast<double>(rs.launch.wall_cycles) /
                      static_cast<double>(rp.launch.wall_cycles);
  EXPECT_GT(gain, 1.3);
  EXPECT_LT(gain, 4.0);
}

TEST(EbnnPackedKernel, AgreesWithGoldenModelInBothBnModes) {
  const EbnnConfig cfg = small_config();
  auto w = EbnnWeights::random(cfg, 73);
  EbnnReference ref(cfg, w);
  const auto data = make_synthetic_mnist(8, 74);
  for (BnMode mode : {BnMode::SoftFloat, BnMode::HostLut}) {
    EbnnHost host(cfg, w, mode, sim::default_config(),
                  ConvKernel::PackedRows);
    const auto r = host.run(images_only(data), 8);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto golden = ref.infer(data[i].pixels.data());
      EXPECT_EQ(r.features[i], golden.feature) << "image " << i;
      EXPECT_EQ(r.predicted[i], golden.predicted) << "image " << i;
    }
  }
}

TEST(EbnnPackedKernel, RejectsUnsupportedGeometry) {
  EbnnConfig cfg;
  cfg.ksize = 5; // packed gather is 3x3-specific
  EXPECT_THROW(make_ebnn_program(cfg, BnMode::HostLut,
                                 ConvKernel::PackedRows),
               UsageError);
  EXPECT_NO_THROW(make_ebnn_program(cfg, BnMode::HostLut,
                                    ConvKernel::Scalar));
}

TEST(EbnnHost, MoreTaskletsNeverSlower) {
  const EbnnConfig cfg = small_config();
  auto w = EbnnWeights::random(cfg, 23);
  const auto data = make_synthetic_mnist(16, 33);
  EbnnHost host(cfg, w, BnMode::HostLut);
  Cycles prev = ~0ull;
  for (std::uint32_t t : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = host.run(images_only(data), t);
    EXPECT_LE(r.launch.wall_cycles, prev) << t << " tasklets";
    prev = r.launch.wall_cycles;
  }
}

TEST(EbnnHost, LutModeFasterThanSoftFloat) {
  // Figure 4.4: the LUT rework speeds up a 16-image run; the thesis
  // measured ~1.4x. Assert a speedup in a sane band.
  const EbnnConfig cfg; // full 16-filter model
  auto w = EbnnWeights::random(cfg, 24);
  const auto data = make_synthetic_mnist(16, 34);
  EbnnHost flt(cfg, w, BnMode::SoftFloat);
  EbnnHost lut(cfg, w, BnMode::HostLut);
  const auto rf = flt.run(images_only(data), 16);
  const auto rl = lut.run(images_only(data), 16);
  // The thesis measured 1.4x; our binary-conv kernel is leaner than the
  // eBNN-generated C, so removing the float BN-BinAct is worth more here
  // (see EXPERIMENTS.md). Assert the direction and a sane magnitude.
  const double speedup = static_cast<double>(rf.launch.wall_cycles) /
                         static_cast<double>(rl.launch.wall_cycles);
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 10.0);
}

TEST(EbnnHost, SubroutineProfileShapeMatchesFigure43) {
  const EbnnConfig cfg = small_config();
  auto w = EbnnWeights::random(cfg, 25);
  const auto data = make_synthetic_mnist(4, 35);
  EbnnHost flt(cfg, w, BnMode::SoftFloat);
  EbnnHost lut(cfg, w, BnMode::HostLut);
  const auto rf = flt.run(images_only(data), 4);
  const auto rl = lut.run(images_only(data), 4);
  // Soft-float mode exercises many float subroutines (the thesis' program
  // showed 11+ call sites; our op mix hits 6 distinct routines: i2f, add,
  // sub, mul, div, compare)...
  EXPECT_GE(rf.launch.profile.distinct(), 6u);
  EXPECT_GT(rf.launch.profile.occurrences(sim::Subroutine::DivSF3), 0u);
  // ...the LUT rework leaves only the residual __mulsi3 (Fig 4.3b).
  EXPECT_LE(rl.launch.profile.distinct(), 2u);
  EXPECT_EQ(rl.launch.profile.float_total(), 0u);
  EXPECT_GT(rl.launch.profile.occurrences(sim::Subroutine::MulSI3), 0u);
}

TEST(EbnnHost, ValidatesInputs) {
  const EbnnConfig cfg = small_config();
  auto w = EbnnWeights::random(cfg, 26);
  EbnnHost host(cfg, w, BnMode::HostLut);
  EXPECT_THROW(host.run({}, 16), UsageError);
  EXPECT_THROW(host.run({Image(10, 0)}, 16), UsageError);
  const auto data = make_synthetic_mnist(1, 36);
  EXPECT_THROW(host.run(images_only(data), 17), UsageError);
  EXPECT_THROW(host.run(images_only(data), 0), UsageError);
}

TEST(EbnnHost, PartialLastDpuBatch) {
  const EbnnConfig cfg = small_config();
  auto w = EbnnWeights::random(cfg, 27);
  EbnnReference ref(cfg, w);
  const auto data = make_synthetic_mnist(17, 37); // 16 + 1
  EbnnHost host(cfg, w, BnMode::HostLut);
  const auto r = host.run(images_only(data), 16);
  EXPECT_EQ(r.dpus_used, 2u);
  ASSERT_EQ(r.predicted.size(), 17u);
  const auto golden = ref.infer(data[16].pixels.data());
  EXPECT_EQ(r.predicted[16], golden.predicted);
}

TEST(EbnnLayout, StridesAreXferAligned) {
  const auto l = ebnn_layout(EbnnConfig{});
  EXPECT_EQ(l.image_stride % 8, 0u);
  EXPECT_EQ(l.result_stride % 8, 0u);
  EXPECT_EQ(l.image_stride, 784u);
  EXPECT_EQ(l.words_per_filter, 6u); // 169 bits -> 6 words
  EXPECT_EQ(l.max_images, 16u);
}

TEST(EbnnProgram, RejectsOversizedImages) {
  EbnnConfig cfg;
  cfg.img_h = 64;
  cfg.img_w = 64; // 4096 B > 2048 B transfer limit
  EXPECT_THROW(make_ebnn_program(cfg, BnMode::HostLut), UsageError);
}

TEST(Train, FcTailLearnsSyntheticDigits) {
  const EbnnConfig cfg;
  auto w = EbnnWeights::random(cfg, 42);
  const auto train = make_synthetic_mnist(300, 100);
  const auto held_out = make_synthetic_mnist(100, 999);
  const float before = evaluate(cfg, w, held_out);
  const auto r = train_fc(cfg, w, train);
  const float after = evaluate(cfg, w, held_out);
  EXPECT_GT(r.train_accuracy, 0.95f);
  EXPECT_LT(r.final_loss, 0.2f);
  EXPECT_GT(after, 0.85f); // generalizes to unseen jitter
  EXPECT_GT(after, before);
}

TEST(Train, TrainedModelAgreesAcrossDpuPath) {
  // Training only touches the host tail, so DPU features are unchanged
  // and DPU-path predictions equal reference predictions after training.
  EbnnConfig cfg;
  cfg.filters = 8;
  auto w = EbnnWeights::random(cfg, 43);
  train_fc(cfg, w, make_synthetic_mnist(100, 101), {10, 0.05f, 1e-4f});
  const auto data = make_synthetic_mnist(12, 102);
  const EbnnReference ref(cfg, w);
  EbnnHost host(cfg, w, BnMode::HostLut);
  const auto r = host.run(images_only(data), 12);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(r.predicted[i], ref.infer(data[i].pixels.data()).predicted);
  }
}

TEST(Train, ValidatesInputs) {
  const EbnnConfig cfg;
  auto w = EbnnWeights::random(cfg, 44);
  EXPECT_THROW(train_fc(cfg, w, {}), UsageError);
  EXPECT_THROW(evaluate(cfg, w, {}), UsageError);
}

TEST(MnistSynth, DeterministicAndLabeled) {
  const auto a = make_synthetic_mnist(10, 99);
  const auto b = make_synthetic_mnist(10, 99);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pixels, b[i].pixels);
    EXPECT_EQ(a[i].label, static_cast<int>(i % 10));
    EXPECT_EQ(a[i].pixels.size(), 28u * 28u);
  }
}

TEST(MnistSynth, DifferentDigitsDiffer) {
  const auto d = make_synthetic_mnist(10, 7);
  int diff = 0;
  for (std::size_t i = 0; i < 28 * 28; ++i) {
    if ((d[0].pixels[i] >= 128) != (d[1].pixels[i] >= 128)) ++diff;
  }
  EXPECT_GT(diff, 20); // digit 0 and digit 1 have distinct glyphs
}

TEST(MnistSynth, HasForegroundAndBackground) {
  const auto d = make_synthetic_mnist(10, 8);
  for (const auto& li : d) {
    int on = 0;
    for (auto px : li.pixels) {
      if (px >= 128) ++on;
    }
    EXPECT_GT(on, 15) << "digit " << li.label;
    EXPECT_LT(on, 28 * 28 / 2) << "digit " << li.label;
  }
}

} // namespace
} // namespace pimdnn::ebnn
