// Calibration regression tests: pin the exact cycle counts that anchor the
// reproduction to the thesis' published measurements. If any cost-model or
// kernel change shifts these, the EXPERIMENTS.md comparisons silently go
// stale — so they are asserted here as golden values (all derived once
// from the Table 3.1 / Eq. 3.4 calibration and the kernels as shipped).
#include <gtest/gtest.h>

#include "ebnn/host.hpp"
#include "ebnn/mnist_synth.hpp"
#include "sim/dpu.hpp"
#include "yolo/dpu_gemm.hpp"
#include "yolo/network.hpp"

namespace pimdnn {
namespace {

using runtime::OptLevel;
using sim::CostModel;
using sim::Subroutine;

TEST(Calibration, SubroutineSlotCostsArePinned) {
  // Calibrated against Table 3.1 (see cost_model.hpp).
  EXPECT_EQ(CostModel::subroutine_slots(Subroutine::MulSI3), 48u);
  EXPECT_EQ(CostModel::subroutine_slots(Subroutine::AddSF3), 56u);
  EXPECT_EQ(CostModel::subroutine_slots(Subroutine::SubSF3), 59u);
  EXPECT_EQ(CostModel::subroutine_slots(Subroutine::MulSF3), 205u);
  EXPECT_EQ(CostModel::subroutine_slots(Subroutine::DivSF3), 1072u);
}

TEST(Calibration, ProfiledOpCyclesMatchTable31Within3Percent) {
  // Reconstructs the bench_table3_1 measurement inline and asserts the
  // deviation bound claimed in EXPERIMENTS.md.
  struct Case {
    double paper;
    std::function<void(sim::TaskletCtx&)> op;
  };
  const float fa = 3.0e38f;
  const float fb = 1.5e-5f;
  const std::vector<Case> cases = {
      {272, [](sim::TaskletCtx& c) { c.add(1, 2); }},
      {272, [](sim::TaskletCtx& c) { c.mul(127, 127, 8); }},
      {608, [](sim::TaskletCtx& c) { c.mul(32767, 32767, 16); }},
      {800, [](sim::TaskletCtx& c) { c.mul(INT32_MAX, 3, 32); }},
      {368, [](sim::TaskletCtx& c) { c.divi(100, 3); }},
      {896, [=](sim::TaskletCtx& c) { c.fadd(fa, fb); }},
      {928, [=](sim::TaskletCtx& c) { c.fsub(fa, fb); }},
      {2528, [=](sim::TaskletCtx& c) { c.fmul(fa, fb); }},
      {12064, [=](sim::TaskletCtx& c) { c.fdiv(fa, fb); }},
  };
  for (const auto& cs : cases) {
    sim::Dpu dpu;
    Cycles measured = 0;
    sim::DpuProgram p;
    p.name = "calib";
    p.symbols = {{"w", sim::MemKind::Wram, 64}};
    p.entry = [&](sim::TaskletCtx& ctx) {
      ctx.perfcounter_config();
      ctx.charge_alu(5);
      cs.op(ctx);
      measured = ctx.perfcounter_get();
    };
    dpu.load(p);
    dpu.launch(1, OptLevel::O0);
    EXPECT_NEAR(static_cast<double>(measured), cs.paper, cs.paper * 0.03)
        << "paper=" << cs.paper;
  }
}

TEST(Calibration, EbnnHeadlineCyclesArePinned) {
  // The Figure 4.4 / §4.3.1 numbers quoted in EXPERIMENTS.md.
  const ebnn::EbnnConfig cfg;
  const auto w = ebnn::EbnnWeights::random(cfg, 42);
  const auto images =
      ebnn::images_only(ebnn::make_synthetic_mnist(16, 9));
  ebnn::EbnnHost flt(cfg, w, ebnn::BnMode::SoftFloat);
  ebnn::EbnnHost lut(cfg, w, ebnn::BnMode::HostLut);
  EXPECT_EQ(flt.run(images, 16).launch.wall_cycles, 78437392u);
  EXPECT_EQ(lut.run(images, 16).launch.wall_cycles, 14102544u);
}

TEST(Calibration, YoloFullSizeEstimateIsPinned) {
  // The 44.93 s full-size YOLOv3 figure (paper: 65 s) in EXPERIMENTS.md.
  Seconds total = 0;
  for (const auto& ls : yolo::YoloRunner::estimate(
           yolo::yolov3_config(), 3, 416, 416,
           yolo::GemmVariant::WramTiled, 11, OptLevel::O3)) {
    total += ls.seconds;
  }
  EXPECT_NEAR(total, 44.93, 0.05);
}

TEST(Calibration, DmaFormulaIsPinned) {
  EXPECT_EQ(CostModel::dma_cycles(2048), 1049u); // thesis Eq. 3.4 example
}

} // namespace
} // namespace pimdnn
