// YOLOv3 tests: config structure (Darknet-53 counts), GEMM offload
// bit-exactness vs Algorithm 2 reference, analytic estimator == simulated
// cycles, whole-network DPU == CPU agreement, tasklet saturation at 11,
// optimization-level ordering, kernel-variant ablation, and head decoding.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/gemm.hpp"
#include "nn/layers.hpp"
#include "yolo/config.hpp"
#include "yolo/detect.hpp"
#include "yolo/dpu_gemm.hpp"
#include "yolo/network.hpp"

namespace pimdnn::yolo {
namespace {

using runtime::OptLevel;

TEST(Config, FullYolov3HasPublishedStructure) {
  const auto defs = yolov3_config();
  const auto s = summarize(defs, 3, 416, 416);
  // Darknet yolov3.cfg: 75 conv, 23 shortcut, 4 route, 2 upsample, 3 yolo.
  EXPECT_EQ(s.conv_layers, 75);
  EXPECT_EQ(s.shortcut_layers, 23);
  EXPECT_EQ(s.route_layers, 4);
  EXPECT_EQ(s.upsample_layers, 2);
  EXPECT_EQ(s.yolo_layers, 3);
  EXPECT_EQ(defs.size(), 107u);
  // Total MACs for 416x416 is ~32.8 G (the published figure ~65.9 GFLOPs
  // counts multiply and add separately).
  EXPECT_GT(s.total_macs, 30e9);
  EXPECT_LT(s.total_macs, 36e9);
}

TEST(Config, FullYolov3AtOtherResolutions) {
  const auto defs = yolov3_config();
  const auto s320 = summarize(defs, 3, 320, 320);
  const auto s608 = summarize(defs, 3, 608, 608);
  EXPECT_LT(s320.total_macs, s608.total_macs);
  // MACs scale roughly with area.
  const double ratio = static_cast<double>(s608.total_macs) /
                       static_cast<double>(s320.total_macs);
  EXPECT_NEAR(ratio, (608.0 * 608) / (320.0 * 320), 0.4);
}

TEST(Config, TinyConfigMatchesPublishedStructure) {
  const auto defs = yolov3_tiny_config();
  const auto s = summarize(defs, 3, 416, 416);
  EXPECT_EQ(s.conv_layers, 13);
  EXPECT_EQ(s.maxpool_layers, 6);
  EXPECT_EQ(s.route_layers, 2);
  EXPECT_EQ(s.upsample_layers, 1);
  EXPECT_EQ(s.yolo_layers, 2);
  EXPECT_EQ(defs.size(), 24u);
  // YOLOv3-tiny is ~2.8 GMACs at 416x416 (published ~5.6 GFLOPs).
  EXPECT_GT(s.total_macs, 2.4e9);
  EXPECT_LT(s.total_macs, 3.2e9);
}

TEST(Config, TinyStrideOnePoolKeepsSize) {
  // Layer 11 of tiny is a size-2 stride-1 maxpool: 13x13 stays 13x13, so
  // the following 1024-filter conv still sees a 13x13 map.
  const auto defs = yolov3_tiny_config();
  const auto est = YoloRunner::estimate(defs, 3, 416, 416,
                                        GemmVariant::WramTiled, 11,
                                        runtime::OptLevel::O3);
  EXPECT_EQ(est[10].out_h, 13); // conv 512 at /32
  EXPECT_EQ(est[11].out_h, 13); // stride-1 pool
  EXPECT_EQ(est[12].out_c, 1024);
  EXPECT_EQ(est[12].out_h, 13);
}

TEST(Config, TinyRunsEndToEndDpuEqualsCpu) {
  const auto defs = yolov3_tiny_config();
  const auto w = YoloWeights::random(defs, 3, 77);
  YoloRunner runner(defs, w, 3, 64, 64);
  const auto img = make_synthetic_image(3, 64, 64, 5, 6);
  const auto cpu = runner.run(img, ExecMode::Cpu);
  const auto dpu = runner.run(img, ExecMode::DpuWram, 8);
  EXPECT_EQ(cpu.outputs, dpu.outputs);
  // Both heads produce 255-channel maps.
  EXPECT_EQ(dpu.layers[16 - 1].out_c, 255);
  EXPECT_EQ(dpu.layers.back().out_c, 255);
}

TEST(MaxpoolDarknet, CeilGeometryAndEdgeClipping) {
  // 3x3 input, size-2 stride-2 pool -> 2x2 output with clipped edges.
  std::vector<std::int16_t> in = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<std::int16_t> out(4);
  nn::maxpool2d_darknet<std::int16_t>(1, 3, 3, 2, 2, in, out);
  EXPECT_EQ(out, (std::vector<std::int16_t>{5, 6, 8, 9}));
  // size-2 stride-1 keeps the size.
  std::vector<std::int16_t> same(9);
  nn::maxpool2d_darknet<std::int16_t>(1, 3, 3, 2, 1, in, same);
  EXPECT_EQ(same, (std::vector<std::int16_t>{5, 6, 6, 8, 9, 9, 8, 9, 9}));
}

TEST(Config, LiteConfigValidatesAndScales) {
  const auto lite1 = yolov3_lite_config(1, 1);
  const auto s1 = summarize(lite1, 3, 64, 64);
  EXPECT_GT(s1.conv_layers, 10);
  EXPECT_EQ(s1.yolo_layers, 2);
  EXPECT_GE(s1.route_layers, 2);
  const auto lite2 = yolov3_lite_config(2, 2);
  const auto s2 = summarize(lite2, 3, 64, 64);
  EXPECT_GT(s2.total_macs, s1.total_macs);
}

TEST(Config, SummarizeRejectsBadTopology) {
  std::vector<LayerDef> defs;
  LayerDef sc;
  sc.type = LayerType::Shortcut;
  sc.from = -3; // nothing before it
  defs.push_back(sc);
  EXPECT_THROW(summarize(defs, 3, 32, 32), UsageError);
}

TEST(Config, SummarizeRejectsShapeMismatchShortcut) {
  auto defs = yolov3_lite_config();
  LayerDef sc;
  sc.type = LayerType::Shortcut;
  sc.from = 0; // layer 0 has a different channel count than the tail
  defs.push_back(sc);
  EXPECT_THROW(summarize(defs, 3, 64, 64), UsageError);
}

// ---- GEMM offload ----------------------------------------------------------

struct GemmCase {
  int m, n, k;
  std::int16_t alpha;
};

class DpuGemmBitExact
    : public ::testing::TestWithParam<std::tuple<GemmCase, GemmVariant>> {};

TEST_P(DpuGemmBitExact, MatchesAlgorithm2Reference) {
  const auto [c, variant] = GetParam();
  Rng rng(2000 + c.m * 7 + c.n * 3 + c.k);
  std::vector<std::int16_t> a(static_cast<std::size_t>(c.m) * c.k);
  std::vector<std::int16_t> b(static_cast<std::size_t>(c.k) * c.n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-99, 99));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-99, 99));

  std::vector<std::int16_t> expect(static_cast<std::size_t>(c.m) * c.n);
  nn::gemm_q16_reference(c.m, c.n, c.k, c.alpha, a, b, expect);

  const auto r = dpu_gemm(c.m, c.n, c.k, c.alpha, a, b, variant, 4);
  EXPECT_EQ(r.dpus_used, static_cast<std::uint32_t>(c.m));
  EXPECT_EQ(r.c, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, DpuGemmBitExact,
    ::testing::Combine(
        ::testing::Values(GemmCase{1, 1, 1, 1}, GemmCase{3, 17, 5, 2},
                          GemmCase{2, 256, 9, 1},   // exactly one strip
                          GemmCase{2, 257, 9, 1},   // strip + 1 column
                          GemmCase{4, 300, 31, 3},  // partial second strip
                          GemmCase{1, 1030, 7, 1}), // many strips
        ::testing::Values(GemmVariant::WramTiled, GemmVariant::MramResident)));

class DpuGemmRowsPacked
    : public ::testing::TestWithParam<std::tuple<GemmCase, GemmVariant, int>> {
};

TEST_P(DpuGemmRowsPacked, PackedRowsBitExactWithCorrectDpuCount) {
  // rows_per_dpu > 1 exercises the zero-padded scatter (tail rows of the
  // last DPU), the per-slot MRAM offsets inside each DPU's A/C blocks and
  // the batched gather's per-slot unpacking — all against the same
  // Algorithm 2 reference as the row-per-DPU mapping.
  const auto [c, variant, rows] = GetParam();
  Rng rng(4000 + c.m * 11 + c.n * 5 + c.k + rows);
  std::vector<std::int16_t> a(static_cast<std::size_t>(c.m) * c.k);
  std::vector<std::int16_t> b(static_cast<std::size_t>(c.k) * c.n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-99, 99));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-99, 99));

  std::vector<std::int16_t> expect(static_cast<std::size_t>(c.m) * c.n);
  nn::gemm_q16_reference(c.m, c.n, c.k, c.alpha, a, b, expect);

  const auto r = dpu_gemm(c.m, c.n, c.k, c.alpha, a, b, variant, 4,
                          OptLevel::O3, sim::default_config(), rows);
  EXPECT_EQ(r.dpus_used, static_cast<std::uint32_t>((c.m + rows - 1) / rows));
  EXPECT_EQ(r.c, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, DpuGemmRowsPacked,
    ::testing::Combine(
        ::testing::Values(GemmCase{4, 40, 6, 1},   // m % rows == 0 for rows=2
                          GemmCase{5, 257, 9, 2},  // padded tail, strip + 1
                          GemmCase{7, 300, 31, 3}),
        ::testing::Values(GemmVariant::WramTiled, GemmVariant::MramResident),
        ::testing::Values(2, 3)));

TEST(DpuGemm, ResultsIndependentOfTaskletCountAndOpt) {
  Rng rng(77);
  const int m = 3, n = 530, k = 12;
  std::vector<std::int16_t> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-30, 30));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-30, 30));
  const auto base = dpu_gemm(m, n, k, 1, a, b, GemmVariant::WramTiled, 1);
  for (std::uint32_t t : {2u, 8u, 11u, 16u}) {
    for (OptLevel opt : {OptLevel::O0, OptLevel::O3}) {
      const auto r = dpu_gemm(m, n, k, 1, a, b, GemmVariant::WramTiled, t, opt);
      EXPECT_EQ(r.c, base.c) << "t=" << t;
    }
  }
}

class GemmEstimatorExact
    : public ::testing::TestWithParam<
          std::tuple<GemmVariant, std::uint32_t, OptLevel>> {};

TEST_P(GemmEstimatorExact, EstimateEqualsSimulatedCycles) {
  const auto [variant, tasklets, opt] = GetParam();
  Rng rng(91);
  const int n = 700, k = 23;
  std::vector<std::int16_t> a(k), b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-9, 9));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-9, 9));
  const auto r = dpu_gemm(1, n, k, 1, a, b, variant, tasklets, opt);
  const Cycles est = estimate_gemm_row_cycles(n, k, variant, tasklets, opt);
  EXPECT_EQ(r.stats.wall_cycles, est)
      << "variant=" << static_cast<int>(variant) << " t=" << tasklets
      << " opt=" << static_cast<int>(opt);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GemmEstimatorExact,
    ::testing::Combine(::testing::Values(GemmVariant::WramTiled,
                                         GemmVariant::MramResident),
                       ::testing::Values(1u, 3u, 11u, 16u),
                       ::testing::Values(OptLevel::O0, OptLevel::O3)));

TEST(DpuGemm, TaskletSpeedupSaturatesAtEleven) {
  // Figure 4.7(a), YOLOv3 series: speedup grows to ~11 tasklets (pipeline
  // depth) and flattens beyond.
  const int n = 33 * kGemmStrip, k = 16; // 33 strips: work for >16 tasklets
  auto cyc = [&](std::uint32_t t) {
    return estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled, t,
                                    OptLevel::O3);
  };
  const double s2 = static_cast<double>(cyc(1)) / cyc(2);
  const double s11 = static_cast<double>(cyc(1)) / cyc(11);
  const double s16 = static_cast<double>(cyc(1)) / cyc(16);
  EXPECT_GT(s2, 1.7);
  EXPECT_GT(s11, 8.0);
  EXPECT_LT(s16 / s11, 1.15); // saturation: < 15% beyond 11 tasklets
}

TEST(DpuGemm, OptimizationOrderingMatchesFigure47b) {
  const int n = 1024, k = 32;
  const auto c_o0_t1 =
      estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled, 1, OptLevel::O0);
  const auto c_o3_t1 =
      estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled, 1, OptLevel::O3);
  const auto c_o0_t11 =
      estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled, 11, OptLevel::O0);
  const auto c_o3_t11 =
      estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled, 11, OptLevel::O3);
  // Worst: O0 no threading; best: O3 + threading; threading is the bigger
  // jump (thesis §4.3.3).
  EXPECT_GT(c_o0_t1, c_o3_t1);
  EXPECT_GT(c_o0_t1, c_o0_t11);
  EXPECT_GT(c_o3_t1, c_o3_t11);
  EXPECT_GT(c_o0_t11, c_o3_t11);
  const double thread_gain = static_cast<double>(c_o0_t1) / c_o0_t11;
  const double opt_gain = static_cast<double>(c_o0_t1) / c_o3_t1;
  EXPECT_GT(thread_gain, opt_gain);
}

TEST(DpuGemm, MramResidentSlowerThanWramTiled) {
  // The §4.3.3 takeaway: pushing accumulator traffic to MRAM costs cycles.
  for (std::uint32_t t : {1u, 11u}) {
    const auto wram =
        estimate_gemm_row_cycles(1500, 64, GemmVariant::WramTiled, t,
                                 OptLevel::O3);
    const auto mram =
        estimate_gemm_row_cycles(1500, 64, GemmVariant::MramResident, t,
                                 OptLevel::O3);
    EXPECT_GT(mram, wram);
  }
}

class GemmRowsPerDpu : public ::testing::TestWithParam<int> {};

TEST_P(GemmRowsPerDpu, PackedMappingBitExactAndUsesFewerDpus) {
  // §6.1 future-work mapping: pack several output rows per DPU. Results
  // must stay bit-identical to the row-per-DPU mapping; DPU count shrinks.
  const int rows = GetParam();
  Rng rng(500 + rows);
  const int m = 10, n = 300, k = 17;
  std::vector<std::int16_t> a(m * k), b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-40, 40));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-40, 40));
  std::vector<std::int16_t> expect(static_cast<std::size_t>(m) * n);
  nn::gemm_q16_reference(m, n, k, 2, a, b, expect);
  for (GemmVariant variant :
       {GemmVariant::WramTiled, GemmVariant::MramResident}) {
    const auto r = dpu_gemm(m, n, k, 2, a, b, variant, 4, OptLevel::O3,
                            sim::default_config(), rows);
    EXPECT_EQ(r.c, expect) << "rows=" << rows;
    EXPECT_EQ(r.dpus_used,
              static_cast<std::uint32_t>((m + rows - 1) / rows));
  }
}

INSTANTIATE_TEST_SUITE_P(Rows, GemmRowsPerDpu,
                         ::testing::Values(1, 2, 3, 5, 10, 16));

TEST(GemmRowsPerDpuTiming, EstimatorExactAndLatencyScalesWithRows) {
  Rng rng(91);
  const int n = 520, k = 12;
  std::vector<std::int16_t> a(4 * k), b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-9, 9));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-9, 9));
  Cycles prev = 0;
  for (int rows : {1, 2, 4}) {
    for (GemmVariant variant :
         {GemmVariant::WramTiled, GemmVariant::MramResident}) {
      const auto r = dpu_gemm(4, n, k, 1, a, b, variant, 3, OptLevel::O0,
                              sim::default_config(), rows);
      EXPECT_EQ(r.stats.wall_cycles,
                estimate_gemm_row_cycles(n, k, variant, 3, OptLevel::O0,
                                         rows))
          << "rows=" << rows;
    }
    const Cycles c = estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled,
                                              11, OptLevel::O3, rows);
    EXPECT_GT(c, prev); // latency grows with packed rows
    prev = c;
  }
  // Packing R rows costs ~R x the single-row latency (amortization keeps
  // it slightly under).
  const auto c1 = estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled, 11,
                                           OptLevel::O3, 1);
  const auto c8 = estimate_gemm_row_cycles(n, k, GemmVariant::WramTiled, 11,
                                           OptLevel::O3, 8);
  EXPECT_LE(c8, 8 * c1);
  EXPECT_GT(c8, 6 * c1);
}

TEST(GemmRowsPerDpu, RejectsOversizedStaging) {
  EXPECT_THROW(make_gemm_program(16, 2048, GemmVariant::WramTiled, 8),
               UsageError); // 8 * 2048 * 2 B > 20 KB WRAM stage budget
}

TEST(DpuGemm, MulSi3DominatesProfile) {
  // Every MAC multiplies 32-bit APART by B -> __mulsi3 per MAC.
  Rng rng(13);
  const int n = 64, k = 8;
  std::vector<std::int16_t> a(k), b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-5, 5));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-5, 5));
  const auto r = dpu_gemm(1, n, k, 1, a, b, GemmVariant::WramTiled, 2);
  EXPECT_GE(r.stats.profile.occurrences(sim::Subroutine::MulSI3),
            static_cast<std::uint64_t>(n) * k);
  EXPECT_EQ(r.stats.profile.float_total(), 0u);
}

TEST(DpuGemm, ValidatesArguments) {
  std::vector<std::int16_t> a(4), b(4);
  EXPECT_THROW(dpu_gemm(0, 2, 2, 1, a, b, GemmVariant::WramTiled, 1),
               UsageError);
  EXPECT_THROW(dpu_gemm(1, 2, 2, 1, a, b, GemmVariant::WramTiled, 0),
               UsageError);
  EXPECT_THROW(dpu_gemm(1, 2, 2, 1, a, b, GemmVariant::WramTiled, 17),
               UsageError);
  EXPECT_THROW(dpu_gemm(4, 2, 2, 1, std::span<const std::int16_t>(a), b,
                        GemmVariant::WramTiled, 1),
               UsageError); // A too small for m=4
  EXPECT_THROW(make_gemm_program(16, 20000, GemmVariant::WramTiled),
               UsageError); // A row would not fit WRAM staging
}

// ---- Whole network ---------------------------------------------------------

TEST(YoloNetwork, DpuMatchesCpuBitForBit) {
  const auto defs = yolov3_lite_config(1, 1);
  const auto w = YoloWeights::random(defs, 3, 404);
  YoloRunner runner(defs, w, 3, 32, 32);
  const auto img = make_synthetic_image(3, 32, 32, 5, 9);
  const auto cpu = runner.run(img, ExecMode::Cpu);
  const auto dpu = runner.run(img, ExecMode::DpuWram, 4);
  ASSERT_EQ(cpu.outputs.size(), dpu.outputs.size());
  for (std::size_t i = 0; i < cpu.outputs.size(); ++i) {
    EXPECT_EQ(cpu.outputs[i], dpu.outputs[i]) << "layer " << i;
  }
  EXPECT_GT(dpu.total_cycles, 0u);
  EXPECT_EQ(cpu.total_cycles, 0u); // CPU mode does not consume DPU cycles
}

TEST(YoloNetwork, MramVariantSameResultsMoreCycles) {
  const auto defs = yolov3_lite_config(1, 1);
  const auto w = YoloWeights::random(defs, 3, 405);
  YoloRunner runner(defs, w, 3, 32, 32);
  const auto img = make_synthetic_image(3, 32, 32, 5, 10);
  const auto wram = runner.run(img, ExecMode::DpuWram, 4);
  const auto mram = runner.run(img, ExecMode::DpuMram, 4);
  EXPECT_EQ(wram.outputs.back(), mram.outputs.back());
  EXPECT_GT(mram.total_cycles, wram.total_cycles);
}

TEST(YoloNetwork, EstimateMatchesSimulatedRun) {
  const auto defs = yolov3_lite_config(1, 1);
  const auto w = YoloWeights::random(defs, 3, 406);
  YoloRunner runner(defs, w, 3, 32, 32);
  const auto img = make_synthetic_image(3, 32, 32, 5, 11);
  const auto run = runner.run(img, ExecMode::DpuWram, 11);
  const auto est = YoloRunner::estimate(defs, 3, 32, 32,
                                        GemmVariant::WramTiled, 11,
                                        OptLevel::O3);
  ASSERT_EQ(run.layers.size(), est.size());
  for (std::size_t i = 0; i < est.size(); ++i) {
    EXPECT_EQ(run.layers[i].cycles, est[i].cycles) << "layer " << i;
    EXPECT_EQ(run.layers[i].dpus, est[i].dpus) << "layer " << i;
    EXPECT_EQ(run.layers[i].out_c, est[i].out_c) << "layer " << i;
  }
}

TEST(YoloNetwork, LayerShapesMatchSummary) {
  const auto defs = yolov3_lite_config(1, 1);
  const auto w = YoloWeights::random(defs, 3, 407);
  YoloRunner runner(defs, w, 3, 64, 64);
  const auto img = make_synthetic_image(3, 64, 64, 5, 12);
  const auto r = runner.run(img, ExecMode::Cpu);
  for (std::size_t i = 0; i < r.layers.size(); ++i) {
    const auto& ls = r.layers[i];
    EXPECT_EQ(r.outputs[i].size(),
              static_cast<std::size_t>(ls.out_c) * ls.out_h * ls.out_w)
        << "layer " << i;
  }
}

TEST(YoloNetwork, WeightsValidation) {
  const auto defs = yolov3_lite_config(1, 1);
  YoloWeights empty;
  EXPECT_THROW(YoloRunner(defs, empty, 3, 32, 32), UsageError);
  const auto w = YoloWeights::random(defs, 3, 1);
  YoloRunner runner(defs, w, 3, 32, 32);
  std::vector<std::int16_t> wrong(10);
  EXPECT_THROW(runner.run(wrong, ExecMode::Cpu), UsageError);
}

// ---- Detection head --------------------------------------------------------

TEST(Detect, AnchorsArePublishedNine) {
  const auto a = yolov3_anchors();
  ASSERT_EQ(a.size(), 9u);
  EXPECT_FLOAT_EQ(a[0].w, 10.0f);
  EXPECT_FLOAT_EQ(a[8].h, 326.0f);
}

TEST(Detect, DecodeFindsPlantedObject) {
  // One box type, 2 classes -> channels = 1 * (5 + 2) = 7, on a 4x4 grid.
  const int classes = 2, h = 4, w = 4, frac = 5;
  const int channels = 7;
  std::vector<std::int16_t> preds(channels * h * w, 0);
  auto set = [&](int c, int y, int x, float v) {
    preds[(c * h + y) * w + x] = static_cast<std::int16_t>(v * (1 << frac));
  };
  // Background objectness strongly negative; one hot cell at (2,1).
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      set(4, y, x, -8.0f);
    }
  }
  set(4, 2, 1, 8.0f);       // objectness -> sigmoid ~ 1
  set(5, 2, 1, -8.0f);      // class 0 low
  set(6, 2, 1, 8.0f);       // class 1 high
  const auto anchors = yolov3_anchors();
  const int mask[] = {0};
  const auto dets = decode_yolo_layer(preds, channels, h, w, classes, anchors,
                                      mask, 64, 64, frac, 0.5f);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].class_id, 1);
  EXPECT_GT(dets[0].objectness, 0.9f);
  EXPECT_NEAR(dets[0].x, (1 + 0.5f) / 4.0f, 0.05f);
  EXPECT_NEAR(dets[0].y, (2 + 0.5f) / 4.0f, 0.05f);
}

TEST(Detect, IouProperties) {
  Detection a{0.5f, 0.5f, 0.2f, 0.2f, 1.0f, 0, 1.0f};
  EXPECT_NEAR(iou(a, a), 1.0f, 1e-6f);
  Detection b{0.9f, 0.9f, 0.1f, 0.1f, 1.0f, 0, 1.0f};
  EXPECT_FLOAT_EQ(iou(a, b), 0.0f);
}

TEST(Detect, NmsSuppressesOverlaps) {
  Detection strong{0.5f, 0.5f, 0.2f, 0.2f, 0.9f, 0, 1.0f};
  Detection weak{0.51f, 0.5f, 0.2f, 0.2f, 0.5f, 0, 1.0f};
  Detection other_class{0.5f, 0.5f, 0.2f, 0.2f, 0.6f, 1, 1.0f};
  Detection far{0.1f, 0.1f, 0.05f, 0.05f, 0.7f, 0, 1.0f};
  const auto kept = nms({weak, strong, other_class, far}, 0.5f);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_FLOAT_EQ(kept[0].objectness, 0.9f); // sorted by objectness
}

TEST(Detect, SyntheticImageIsDeterministicAndBounded) {
  const auto a = make_synthetic_image(3, 32, 32, 5, 1);
  const auto b = make_synthetic_image(3, 32, 32, 5, 1);
  EXPECT_EQ(a, b);
  for (auto v : a) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 32); // values in [0, 1] at 5 fractional bits
  }
}

} // namespace
} // namespace pimdnn::yolo
