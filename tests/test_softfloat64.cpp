// Property tests for the binary64 soft-float library (__adddf3/__muldf3/
// __divdf3 siblings): bit-exact agreement with the host FPU across random
// sweeps including subnormals, zeros, infinities and an exponent grid.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/softfloat64.hpp"

namespace pimdnn::sim::softfloat64 {
namespace {

F64 random_bits(Rng& rng) {
  const auto roll = rng.next_u32() % 10;
  if (roll == 0) {
    return rng.next_u64() & 0x800fffffffffffffULL; // subnormal / zero
  }
  if (roll == 1) {
    const std::uint64_t exp = (rng.next_u32() % 4 < 2) ? 1 : 0x7fe;
    return (rng.next_u64() & 0x800fffffffffffffULL) | (exp << 52);
  }
  return rng.next_u64();
}

void expect_equal(double expected, F64 got_bits, double fa, double fb,
                  const char* op) {
  if (std::isnan(expected) && is_nan(got_bits)) return;
  EXPECT_EQ(to_bits(expected), got_bits)
      << op << " a=" << std::hexfloat << fa << " b=" << fb
      << " expected=" << expected << " got=" << from_bits(got_bits);
}

TEST(SoftFloat64, AddMatchesHardwareRandomSweep) {
  Rng rng(201);
  for (int i = 0; i < 200000; ++i) {
    const F64 a = random_bits(rng);
    const F64 b = random_bits(rng);
    if (is_nan(a) || is_nan(b)) continue;
    expect_equal(from_bits(a) + from_bits(b), add(a, b), from_bits(a),
                 from_bits(b), "add");
  }
}

TEST(SoftFloat64, SubMatchesHardwareRandomSweep) {
  Rng rng(202);
  for (int i = 0; i < 200000; ++i) {
    const F64 a = random_bits(rng);
    const F64 b = random_bits(rng);
    if (is_nan(a) || is_nan(b)) continue;
    expect_equal(from_bits(a) - from_bits(b), sub(a, b), from_bits(a),
                 from_bits(b), "sub");
  }
}

TEST(SoftFloat64, MulMatchesHardwareRandomSweep) {
  Rng rng(203);
  for (int i = 0; i < 200000; ++i) {
    const F64 a = random_bits(rng);
    const F64 b = random_bits(rng);
    if (is_nan(a) || is_nan(b)) continue;
    expect_equal(from_bits(a) * from_bits(b), mul(a, b), from_bits(a),
                 from_bits(b), "mul");
  }
}

TEST(SoftFloat64, DivMatchesHardwareRandomSweep) {
  Rng rng(204);
  for (int i = 0; i < 200000; ++i) {
    const F64 a = random_bits(rng);
    const F64 b = random_bits(rng);
    if (is_nan(a) || is_nan(b)) continue;
    expect_equal(from_bits(a) / from_bits(b), div(a, b), from_bits(a),
                 from_bits(b), "div");
  }
}

TEST(SoftFloat64, ExponentGrid) {
  Rng rng(205);
  for (int ea = 0; ea <= 0x7fe; ea += 61) {
    for (int eb = 0; eb <= 0x7fe; eb += 61) {
      const F64 a = (rng.next_u64() & 0x800fffffffffffffULL) |
                    (static_cast<std::uint64_t>(ea) << 52);
      const F64 b = (rng.next_u64() & 0x800fffffffffffffULL) |
                    (static_cast<std::uint64_t>(eb) << 52);
      const double fa = from_bits(a);
      const double fb = from_bits(b);
      ASSERT_EQ(to_bits(fa + fb), add(a, b)) << fa << "+" << fb;
      ASSERT_EQ(to_bits(fa * fb), mul(a, b)) << fa << "*" << fb;
      ASSERT_EQ(to_bits(fa / fb), div(a, b)) << fa << "/" << fb;
    }
  }
}

TEST(SoftFloat64, SpecialValues) {
  const F64 inf = to_bits(INFINITY);
  EXPECT_TRUE(is_nan(add(inf, to_bits(-INFINITY))));
  EXPECT_TRUE(is_nan(mul(inf, to_bits(0.0))));
  EXPECT_TRUE(is_nan(div(to_bits(0.0), to_bits(0.0))));
  EXPECT_EQ(div(to_bits(1.0), to_bits(0.0)), inf);
  EXPECT_EQ(add(to_bits(0.0), to_bits(-0.0)), to_bits(0.0));
  EXPECT_EQ(add(to_bits(-0.0), to_bits(-0.0)), to_bits(-0.0));
  EXPECT_EQ(mul(to_bits(-2.0), to_bits(3.0)), to_bits(-6.0));
  const double big = 1.5e308;
  EXPECT_EQ(add(to_bits(big), to_bits(big)), inf);
}

TEST(SoftFloat64, Comparisons) {
  Rng rng(206);
  for (int i = 0; i < 100000; ++i) {
    const F64 a = random_bits(rng);
    const F64 b = random_bits(rng);
    EXPECT_EQ(lt(a, b), from_bits(a) < from_bits(b));
    EXPECT_EQ(eq(a, b), from_bits(a) == from_bits(b));
  }
  EXPECT_TRUE(eq(to_bits(0.0), to_bits(-0.0)));
  EXPECT_FALSE(lt(kQuietNan, to_bits(1.0)));
}

} // namespace
} // namespace pimdnn::sim::softfloat64
