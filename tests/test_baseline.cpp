// CPU baseline tests: timing sanity and CPU/DPU prediction agreement.
#include <gtest/gtest.h>

#include "baseline/cpu_baseline.hpp"
#include "ebnn/host.hpp"

namespace pimdnn::baseline {
namespace {

TEST(CpuBaseline, TimesEbnnBatchAndPredicts) {
  ebnn::EbnnConfig cfg;
  cfg.filters = 8;
  const auto w = ebnn::EbnnWeights::random(cfg, 3);
  const auto data = ebnn::make_synthetic_mnist(8, 4);
  const auto t = time_cpu_ebnn(cfg, w, ebnn::images_only(data), 2);
  EXPECT_EQ(t.images, 8u);
  EXPECT_GT(t.seconds, 0.0);
  EXPECT_NEAR(t.seconds_per_image * 8.0, t.seconds, 1e-12);
  ASSERT_EQ(t.predicted.size(), 8u);
}

TEST(CpuBaseline, PredictionsAgreeWithDpuPath) {
  ebnn::EbnnConfig cfg;
  cfg.filters = 8;
  const auto w = ebnn::EbnnWeights::random(cfg, 5);
  const auto data = ebnn::make_synthetic_mnist(6, 6);
  const auto cpu = time_cpu_ebnn(cfg, w, ebnn::images_only(data), 1);
  ebnn::EbnnHost host(cfg, w, ebnn::BnMode::HostLut);
  const auto dpu = host.run(ebnn::images_only(data), 6);
  EXPECT_EQ(cpu.predicted, dpu.predicted);
}

TEST(CpuBaseline, GemmTimingPositiveAndScales) {
  const Seconds small = time_cpu_gemm_q16(8, 64, 16, 2);
  const Seconds large = time_cpu_gemm_q16(32, 512, 64, 2);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

TEST(CpuBaseline, EmptyBatchIsWellDefined) {
  ebnn::EbnnConfig cfg;
  cfg.filters = 8;
  const auto w = ebnn::EbnnWeights::random(cfg, 7);
  const auto t = time_cpu_ebnn(cfg, w, {}, 1);
  EXPECT_EQ(t.images, 0u);
  EXPECT_EQ(t.seconds_per_image, 0.0);
}

} // namespace
} // namespace pimdnn::baseline
