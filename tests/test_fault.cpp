// Fault-injection substrate + self-healing runtime tests: PIMDNN_FAULTS
// grammar parsing, deterministic draws, typed DpuFault launch errors, pool
// strike/quarantine/remap policy, session retry + upload replay after a
// quarantine, degradation to the bit-identical CPU path, hang-deadline
// cycle accounting, finish() misuse, and allocation-fault exception safety
// of DpuPool::reserve.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sim_mode.hpp"
#include "ebnn/deep.hpp"
#include "ebnn/host.hpp"
#include "ebnn/mnist_synth.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "runtime/dpu_pool.hpp"
#include "runtime/dpu_set.hpp"
#include "runtime/kernel_session.hpp"
#include "sim/fault.hpp"
#include "yolo/dpu_gemm.hpp"

namespace pimdnn {
namespace {

using runtime::DpuPool;
using runtime::DpuSet;
using runtime::KernelSession;
using runtime::LaunchStats;
using sim::DpuFault;
using sim::FaultConfig;
using sim::FaultKind;
using sim::MemKind;
using sim::TaskletCtx;
using yolo::GemmVariant;

/// Every test starts and ends with injection disabled and metrics clean —
/// the fault plan and the default executor are process-global state. The
/// whole suite runs twice, once per executor: fault draws, quarantine and
/// reintegration decisions and every output must be identical under
/// SimMode::Interp and SimMode::Fast.
class FaultTest : public ::testing::TestWithParam<SimMode> {
protected:
  void SetUp() override {
    sim::set_fault_config(FaultConfig{});
    set_default_sim_mode(GetParam());
    obs::Metrics::instance().reset();
  }
  void TearDown() override {
    sim::set_fault_config(FaultConfig{});
    set_default_sim_mode(SimMode::Interp);
    obs::Metrics::instance().reset();
  }
};

sim::DpuProgram tiny_program(const std::string& name = "tiny") {
  sim::DpuProgram p;
  p.name = name;
  p.symbols = {{"data", MemKind::Mram, 64}, {"w", MemKind::Wram, 8}};
  p.entry = [](TaskletCtx& ctx) { ctx.charge_alu(1); };
  return p;
}

/// One pooled GEMM next to its bit-exact reference.
struct GemmCase {
  int m = 8, n = 24, k = 6, rows = 2;
  std::vector<std::int16_t> a, b, expect;

  GemmCase() {
    Rng rng(1234);
    a.resize(static_cast<std::size_t>(m) * k);
    b.resize(static_cast<std::size_t>(k) * n);
    for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-50, 50));
    for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-50, 50));
    expect.resize(static_cast<std::size_t>(m) * n);
    nn::gemm_q16_reference(m, n, k, 2, a, b, expect);
  }

  yolo::GemmResult run(DpuPool& pool) const {
    return yolo::dpu_gemm_pooled(pool, m, n, k, 2, a, b,
                                 GemmVariant::WramTiled, 4,
                                 runtime::OptLevel::O3, rows);
  }
};

// ---- config grammar --------------------------------------------------------

TEST_P(FaultTest, ParseGrammarRoundTrips) {
  const auto cfg = sim::parse_fault_config(
      "seed=42,bad=0.25,bad_mask=0x6,alloc=0.1,launch=0.2,hang=0.3,"
      "hang_cycles=5000,xfer=0.01,mram=0.02");
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.bad_dpu_rate, 0.25);
  EXPECT_EQ(cfg.bad_dpu_mask, 0x6u);
  EXPECT_DOUBLE_EQ(cfg.alloc_fail_rate, 0.1);
  EXPECT_DOUBLE_EQ(cfg.launch_fail_rate, 0.2);
  EXPECT_DOUBLE_EQ(cfg.launch_hang_rate, 0.3);
  EXPECT_EQ(cfg.hang_deadline_cycles, 5000u);
  EXPECT_DOUBLE_EQ(cfg.transfer_corrupt_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.mram_corrupt_rate, 0.02);
  EXPECT_TRUE(cfg.any());

  // describe() renders the same grammar: parsing it back is lossless.
  const auto again = sim::parse_fault_config(cfg.describe());
  EXPECT_EQ(again.seed, cfg.seed);
  EXPECT_EQ(again.bad_dpu_mask, cfg.bad_dpu_mask);
  EXPECT_DOUBLE_EQ(again.launch_fail_rate, cfg.launch_fail_rate);
  EXPECT_EQ(again.hang_deadline_cycles, cfg.hang_deadline_cycles);

  EXPECT_FALSE(FaultConfig{}.any());
  EXPECT_FALSE(sim::parse_fault_config("seed=7").any());
}

TEST_P(FaultTest, ParseRejectsBadSpecs) {
  EXPECT_THROW(sim::parse_fault_config("bogus=1"), ConfigError);
  EXPECT_THROW(sim::parse_fault_config("launch=1.5"), ConfigError);
  EXPECT_THROW(sim::parse_fault_config("launch=-0.1"), ConfigError);
  EXPECT_THROW(sim::parse_fault_config("launch=abc"), ConfigError);
  EXPECT_THROW(sim::parse_fault_config("launch"), ConfigError);
  EXPECT_THROW(sim::parse_fault_config("seed="), ConfigError);
}

// ---- deterministic draws ---------------------------------------------------

TEST_P(FaultTest, DrawsAreDeterministicPerSeed) {
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.launch_fail_rate = 0.5;

  const auto sample = [&] {
    sim::set_fault_config(cfg);
    std::vector<bool> hits;
    for (int i = 0; i < 64; ++i) {
      std::uint64_t salt = 0;
      hits.push_back(sim::fault_plan().draw(FaultKind::LaunchFail, 3, salt));
    }
    return hits;
  };
  const auto first = sample();
  const auto second = sample(); // configure() reset the ordinals
  EXPECT_EQ(first, second);
  // A 0.5 rate over 64 draws hits at least once and misses at least once.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  cfg.seed = 100;
  const auto other_seed = sample();
  EXPECT_NE(first, other_seed);
}

TEST_P(FaultTest, BadDpuMaskMarksAllocatedDpus) {
  FaultConfig cfg;
  cfg.bad_dpu_mask = 0x5; // DPUs 0 and 2
  sim::set_fault_config(cfg);
  EXPECT_TRUE(sim::fault_plan().bad_dpu(0));
  EXPECT_FALSE(sim::fault_plan().bad_dpu(1));
  EXPECT_TRUE(sim::fault_plan().bad_dpu(2));
  EXPECT_FALSE(sim::fault_plan().bad_dpu(64)); // past the mask, rate 0

  DpuSet set = DpuSet::allocate(4);
  EXPECT_TRUE(set.allocated_bad(0));
  EXPECT_FALSE(set.allocated_bad(1));
  EXPECT_TRUE(set.allocated_bad(2));
  EXPECT_FALSE(set.allocated_bad(3));
  EXPECT_GE(obs::Metrics::instance().counter("faults.injected"), 2u);
}

// ---- typed launch faults ---------------------------------------------------

TEST_P(FaultTest, LaunchReportsLowestFaultyDpu) {
  FaultConfig cfg;
  cfg.bad_dpu_mask = 0xC; // DPUs 2 and 3
  sim::set_fault_config(cfg);
  DpuSet set = DpuSet::allocate(4);
  set.load(tiny_program());
  try {
    set.launch(1);
    FAIL() << "launch on a bad DPU must throw";
  } catch (const DpuFault& f) {
    EXPECT_EQ(f.dpu_index(), 2u);
    EXPECT_EQ(f.kind(), FaultKind::BadDpu);
  }
}

// ---- pool health policy ----------------------------------------------------

TEST_P(FaultTest, QuarantineAfterStrikesRemapsAndDropsResidents) {
  DpuPool pool;
  pool.activate("a", 4, [] { return tiny_program("a"); });
  pool.begin_resident("w", 1);
  pool.commit_resident("w", 1);
  ASSERT_TRUE(pool.resident_matches("w", 1));

  // Two strikes keep the DPU in service; the third quarantines it.
  EXPECT_FALSE(pool.note_fault(1, FaultKind::LaunchFail));
  EXPECT_FALSE(pool.note_fault(1, FaultKind::LaunchHang));
  EXPECT_TRUE(pool.note_fault(1, FaultKind::LaunchFail));
  EXPECT_EQ(pool.quarantined(), 1u);
  EXPECT_EQ(pool.healthy_capacity(), 3u);
  // The logical prefix slid off physical DPU 1...
  EXPECT_EQ(pool.set().physical(0), 0u);
  EXPECT_EQ(pool.set().physical(1), 2u);
  EXPECT_EQ(pool.set().physical(2), 3u);
  EXPECT_EQ(pool.set().logical_size(), 3u);
  // ...and the resident record died with the remap.
  EXPECT_FALSE(pool.resident_matches("w", 1));
  // Further strikes on a quarantined DPU are no-ops.
  EXPECT_FALSE(pool.note_fault(1, FaultKind::BadDpu));
  EXPECT_EQ(pool.quarantined(), 1u);

  // A permanently-bad DPU quarantines on the first strike.
  EXPECT_TRUE(pool.note_fault(3, FaultKind::BadDpu));
  EXPECT_EQ(pool.healthy_capacity(), 2u);
}

// ---- self-healing offloads -------------------------------------------------

TEST_P(FaultTest, GemmSelfHealsAroundBadDpuBitExactly) {
  FaultConfig cfg;
  cfg.bad_dpu_mask = 0x1; // physical DPU 0 permanently faulty
  sim::set_fault_config(cfg);

  const GemmCase gemm;
  DpuPool pool;

  // First offload discovers the bad DPU at launch; with no spare capacity
  // yet it degrades to the CPU path — still bit-exact.
  const auto first = gemm.run(pool);
  EXPECT_EQ(first.c, gemm.expect);
  EXPECT_TRUE(first.stats.cpu_fallback);
  EXPECT_EQ(first.stats.quarantined, 1u);
  EXPECT_GE(first.stats.faults_absorbed, 1u);

  // The next reserve over-allocates past the quarantined DPU, so the second
  // offload quarantines it again, replays its uploads onto the healthy
  // remap and retries to a real DPU result.
  const auto second = gemm.run(pool);
  EXPECT_EQ(second.c, gemm.expect);
  EXPECT_FALSE(second.stats.cpu_fallback);
  EXPECT_EQ(second.stats.retries, 1u);
  EXPECT_EQ(second.stats.quarantined, 1u);
  EXPECT_GE(second.stats.faults_absorbed, 1u);
  EXPECT_GT(obs::Metrics::instance().counter("offload.retry"), 0u);
  EXPECT_GT(obs::Metrics::instance().counter("pool.quarantined"), 0u);
}

TEST_P(FaultTest, UnrepairableCorruptionDegradesToCpuBitExactly) {
  FaultConfig cfg;
  cfg.transfer_corrupt_rate = 1.0; // every write (and every repair) flips
  sim::set_fault_config(cfg);

  const GemmCase gemm;
  DpuPool pool;
  const auto r = gemm.run(pool);
  EXPECT_EQ(r.c, gemm.expect);
  EXPECT_TRUE(r.stats.cpu_fallback);
  EXPECT_GE(r.stats.faults_absorbed, 1u);
  EXPECT_GT(obs::Metrics::instance().counter("offload.fallback"), 0u);
  EXPECT_GT(obs::Metrics::instance().counter("offload.xfer.repair"), 0u);
}

TEST_P(FaultTest, HangDeadlineChargesRetryCycles) {
  FaultConfig cfg;
  cfg.launch_hang_rate = 1.0;
  cfg.hang_deadline_cycles = 12345;
  sim::set_fault_config(cfg);

  const GemmCase gemm;
  DpuPool pool;
  const auto r = gemm.run(pool);
  EXPECT_EQ(r.c, gemm.expect); // every attempt hangs -> CPU path
  EXPECT_TRUE(r.stats.cpu_fallback);
  // Each failed attempt burned the watchdog deadline; the lost time lands
  // in retry_cycles, never in wall_cycles.
  EXPECT_GE(r.stats.retry_cycles, cfg.hang_deadline_cycles);
  EXPECT_EQ(r.stats.wall_cycles, 0u);
}

TEST_P(FaultTest, ModerateLaunchFaultsAreAbsorbedBitExactly) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.launch_fail_rate = 0.1;
  sim::set_fault_config(cfg);

  const GemmCase gemm;
  DpuPool pool;
  std::uint32_t retries = 0;
  for (int frame = 0; frame < 8; ++frame) {
    const auto r = gemm.run(pool);
    EXPECT_EQ(r.c, gemm.expect) << "frame " << frame;
    retries += r.stats.retries;
  }
  // A 10% per-DPU rate over 8 frames x 4 DPUs must have tripped retries.
  EXPECT_GT(retries, 0u);
  EXPECT_GT(obs::Metrics::instance().counter("faults.injected"), 0u);
}

TEST_P(FaultTest, EbnnPipelinesSurviveFaultsBitExactly) {
  const ebnn::EbnnConfig cfg;
  const auto weights = ebnn::EbnnWeights::random(cfg, 42);
  const auto images =
      ebnn::images_only(ebnn::make_synthetic_mnist(32, 11));

  ebnn::DeepEbnnConfig dcfg;
  const auto dweights = ebnn::DeepEbnnWeights::random(dcfg, 42);

  const auto run_ebnn = [&] {
    ebnn::EbnnHost host(cfg, weights, ebnn::BnMode::HostLut);
    return host.run(images, 16);
  };
  const auto run_deep = [&] {
    ebnn::DeepEbnnHost host(dcfg, dweights);
    return host.run(images);
  };

  const auto clean = run_ebnn();
  const auto deep_clean = run_deep();

  FaultConfig fcfg;
  fcfg.seed = 42;
  fcfg.bad_dpu_mask = 0x4;
  fcfg.launch_fail_rate = 0.05;
  fcfg.transfer_corrupt_rate = 0.01;
  sim::set_fault_config(fcfg);

  const auto faulty = run_ebnn();
  EXPECT_EQ(faulty.predicted, clean.predicted);
  EXPECT_EQ(faulty.features, clean.features);

  const auto deep_faulty = run_deep();
  EXPECT_EQ(deep_faulty.predicted, deep_clean.predicted);
  EXPECT_EQ(deep_faulty.features, deep_clean.features);

  EXPECT_GT(obs::Metrics::instance().counter("faults.injected"), 0u);
}

// ---- finish() misuse -------------------------------------------------------

TEST_P(FaultTest, FinishTwiceThrowsWithoutDoubleRecording) {
  DpuPool pool;
  KernelSession s(pool, "tiny", 1, [] { return tiny_program(); });
  ASSERT_TRUE(s.launch(1));
  s.finish();
  const auto launches_after_first =
      obs::Metrics::instance().signatures().at("tiny").launches;
  EXPECT_THROW(s.finish(), UsageError);
  // The second call recorded nothing.
  EXPECT_EQ(obs::Metrics::instance().signatures().at("tiny").launches,
            launches_after_first);
}

TEST_P(FaultTest, FinishBeforeLaunchThrows) {
  DpuPool pool;
  KernelSession s(pool, "tiny", 1, [] { return tiny_program(); });
  EXPECT_THROW(s.finish(), UsageError);
}

TEST_P(FaultTest, FinishAfterDegradedLaunchSucceedsOnce) {
  FaultConfig cfg;
  cfg.launch_fail_rate = 1.0;
  sim::set_fault_config(cfg);
  DpuPool pool;
  KernelSession s(pool, "tiny", 1, [] { return tiny_program(); });
  EXPECT_FALSE(s.launch(1));
  EXPECT_TRUE(s.degraded());
  const LaunchStats st = s.finish();
  EXPECT_TRUE(st.cpu_fallback);
  EXPECT_THROW(s.finish(), UsageError);
}

// ---- allocation-fault exception safety -------------------------------------

TEST_P(FaultTest, ReserveAllocFaultLeavesPoolConsistent) {
  FaultConfig cfg;
  cfg.alloc_fail_rate = 1.0;
  sim::set_fault_config(cfg);

  DpuPool pool;
  EXPECT_THROW(pool.activate("a", 2, [] { return tiny_program("a"); }),
               DpuFault);
  // The failed allocation left no half-built state behind.
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.cached_programs(), 0u);
  EXPECT_EQ(pool.healthy_capacity(), 0u);

  // With injection off again the same pool builds cleanly from scratch.
  sim::set_fault_config(FaultConfig{});
  EXPECT_EQ(pool.activate("a", 2, [] { return tiny_program("a"); }),
            DpuPool::Activation::Fresh);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.cached_programs(), 1u);
  EXPECT_EQ(pool.healthy_capacity(), 2u);
}

TEST_P(FaultTest, GrowthAllocFaultKeepsOldSetUsable) {
  DpuPool pool;
  pool.activate("a", 2, [] { return tiny_program("a"); });
  pool.begin_resident("w", 1);
  pool.commit_resident("w", 1);

  FaultConfig cfg;
  cfg.alloc_fail_rate = 1.0;
  sim::set_fault_config(cfg);
  // Growing must allocate the wider set *before* dropping anything: the
  // injected failure leaves the original set, cache and resident intact.
  EXPECT_THROW(pool.reserve(4), DpuFault);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.cached_programs(), 1u);
  EXPECT_TRUE(pool.resident_matches("w", 1));
  EXPECT_EQ(pool.resets(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Executors, FaultTest,
                         ::testing::Values(SimMode::Interp, SimMode::Fast),
                         [](const ::testing::TestParamInfo<SimMode>& info) {
                           return std::string(sim_mode_name(info.param));
                         });

} // namespace
} // namespace pimdnn
