// Tests for the launch-report module: bound classification, imbalance
// metric and report rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/dpu.hpp"
#include "sim/report.hpp"

namespace pimdnn::sim {
namespace {

DpuProgram program_with(std::function<void(TaskletCtx&)> fn) {
  DpuProgram p;
  p.name = "report_test";
  p.symbols = {{"m", MemKind::Mram, 1 << 20}, {"w", MemKind::Wram, 4096}};
  p.entry = std::move(fn);
  return p;
}

TEST(Report, ClassifiesLatencyBound) {
  // One tasklet: per-tasklet latency (11x slots) dominates.
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) { ctx.charge_alu(1000); }));
  const auto stats = d.launch(1, OptLevel::O3);
  EXPECT_EQ(dominant_bound(stats), CycleBound::Latency);
}

TEST(Report, ClassifiesIssueBound) {
  // 16 balanced tasklets: the pipeline issues back-to-back.
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) { ctx.charge_alu(1000); }));
  const auto stats = d.launch(16, OptLevel::O3);
  EXPECT_EQ(dominant_bound(stats), CycleBound::Issue);
  EXPECT_EQ(stats.cycles, stats.total_slots);
}

TEST(Report, ClassifiesDmaBound) {
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) {
    auto buf = ctx.wram_span<std::uint8_t>("w");
    for (int i = 0; i < 64; ++i) {
      ctx.mram_read(buf.data(), ctx.mram_addr("m"), 2048);
    }
    ctx.charge_alu(10);
  }));
  const auto stats = d.launch(4, OptLevel::O3);
  EXPECT_EQ(dominant_bound(stats), CycleBound::Dma);
}

TEST(Report, ImbalanceMetric) {
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) {
    ctx.charge_alu(ctx.id() == 0 ? 3000 : 1000);
  }));
  const auto stats = d.launch(2, OptLevel::O3);
  // Slowest = 3000, mean = 2000 -> 1.5.
  EXPECT_NEAR(tasklet_imbalance(stats), 1.5, 1e-9);

  Dpu b;
  b.load(program_with([](TaskletCtx& ctx) { ctx.charge_alu(500); }));
  EXPECT_NEAR(tasklet_imbalance(b.launch(8, OptLevel::O3)), 1.0, 1e-9);
}

TEST(Report, PrintContainsKeySections) {
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) {
    (void)ctx.fadd(1.0f, 2.0f);
    ctx.charge_alu(50);
  }));
  const auto stats = d.launch(2, OptLevel::O0);
  std::ostringstream os;
  print_report(os, stats);
  const std::string s = os.str();
  EXPECT_NE(s.find("cycles:"), std::string::npos);
  EXPECT_NE(s.find("bound:"), std::string::npos);
  EXPECT_NE(s.find("[ 0]"), std::string::npos);
  EXPECT_NE(s.find("__addsf3"), std::string::npos);
}

TEST(Report, BoundNamesPrintable) {
  EXPECT_STREQ(cycle_bound_name(CycleBound::Issue),
               "issue-bound (pipeline full)");
  EXPECT_STREQ(cycle_bound_name(CycleBound::Dma),
               "DMA-bound (MRAM interface)");
  EXPECT_STREQ(cycle_bound_name(CycleBound::Latency),
               "latency-bound (under-threaded)");
}

TEST(Report, HostXferAccumulateAndDelta) {
  HostXferStats before;
  before.to_dpu_seconds = 0.5;
  before.from_dpu_seconds = 0.25;
  before.load_seconds = 0.125;
  before.bytes_to_dpu = 1000;
  before.bytes_from_dpu = 200;
  before.program_loads = 2;
  before.cached_activations = 3;

  HostXferStats step;
  step.to_dpu_seconds = 0.1;
  step.from_dpu_seconds = 0.2;
  step.load_seconds = 0.3;
  step.bytes_to_dpu = 64;
  step.bytes_from_dpu = 32;
  step.program_loads = 1;
  step.cached_activations = 4;

  HostXferStats after = before;
  after += step;
  EXPECT_DOUBLE_EQ(after.to_dpu_seconds, 0.6);
  EXPECT_DOUBLE_EQ(after.from_dpu_seconds, 0.45);
  EXPECT_DOUBLE_EQ(after.load_seconds, 0.425);
  EXPECT_EQ(after.bytes_to_dpu, 1064u);
  EXPECT_EQ(after.bytes_from_dpu, 232u);
  EXPECT_EQ(after.program_loads, 3u);
  EXPECT_EQ(after.cached_activations, 7u);
  EXPECT_DOUBLE_EQ(after.host_seconds(), 0.6 + 0.45 + 0.425);

  // Delta of a cumulative counter around one step recovers the step.
  const HostXferStats d = host_xfer_delta(after, before);
  EXPECT_DOUBLE_EQ(d.to_dpu_seconds, step.to_dpu_seconds);
  EXPECT_DOUBLE_EQ(d.from_dpu_seconds, step.from_dpu_seconds);
  EXPECT_DOUBLE_EQ(d.load_seconds, step.load_seconds);
  EXPECT_EQ(d.bytes_to_dpu, step.bytes_to_dpu);
  EXPECT_EQ(d.bytes_from_dpu, step.bytes_from_dpu);
  EXPECT_EQ(d.program_loads, step.program_loads);
  EXPECT_EQ(d.cached_activations, step.cached_activations);

  // Delta of a counter against itself is all-zero.
  const HostXferStats zero = host_xfer_delta(after, after);
  EXPECT_DOUBLE_EQ(zero.host_seconds(), 0.0);
  EXPECT_EQ(zero.bytes_to_dpu, 0u);
  EXPECT_EQ(zero.program_loads, 0u);
}

TEST(Report, HostXferReportContainsKeyFields) {
  HostXferStats h;
  h.to_dpu_seconds = 0.001;
  h.from_dpu_seconds = 0.002;
  h.load_seconds = 0.003;
  h.bytes_to_dpu = 123456;
  h.bytes_from_dpu = 7890;
  h.program_loads = 5;
  h.cached_activations = 9;
  std::ostringstream os;
  print_host_xfer_report(os, h);
  const std::string s = os.str();
  EXPECT_NE(s.find("123456"), std::string::npos);
  EXPECT_NE(s.find("7890"), std::string::npos);
  EXPECT_NE(s.find("5"), std::string::npos);
  EXPECT_NE(s.find("9"), std::string::npos);
  EXPECT_FALSE(s.empty());
}

} // namespace
} // namespace pimdnn::sim
