// Tests for the launch-report module: bound classification, imbalance
// metric and report rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/dpu.hpp"
#include "sim/report.hpp"

namespace pimdnn::sim {
namespace {

DpuProgram program_with(std::function<void(TaskletCtx&)> fn) {
  DpuProgram p;
  p.name = "report_test";
  p.symbols = {{"m", MemKind::Mram, 1 << 20}, {"w", MemKind::Wram, 4096}};
  p.entry = std::move(fn);
  return p;
}

TEST(Report, ClassifiesLatencyBound) {
  // One tasklet: per-tasklet latency (11x slots) dominates.
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) { ctx.charge_alu(1000); }));
  const auto stats = d.launch(1, OptLevel::O3);
  EXPECT_EQ(dominant_bound(stats), CycleBound::Latency);
}

TEST(Report, ClassifiesIssueBound) {
  // 16 balanced tasklets: the pipeline issues back-to-back.
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) { ctx.charge_alu(1000); }));
  const auto stats = d.launch(16, OptLevel::O3);
  EXPECT_EQ(dominant_bound(stats), CycleBound::Issue);
  EXPECT_EQ(stats.cycles, stats.total_slots);
}

TEST(Report, ClassifiesDmaBound) {
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) {
    auto buf = ctx.wram_span<std::uint8_t>("w");
    for (int i = 0; i < 64; ++i) {
      ctx.mram_read(buf.data(), ctx.mram_addr("m"), 2048);
    }
    ctx.charge_alu(10);
  }));
  const auto stats = d.launch(4, OptLevel::O3);
  EXPECT_EQ(dominant_bound(stats), CycleBound::Dma);
}

TEST(Report, ImbalanceMetric) {
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) {
    ctx.charge_alu(ctx.id() == 0 ? 3000 : 1000);
  }));
  const auto stats = d.launch(2, OptLevel::O3);
  // Slowest = 3000, mean = 2000 -> 1.5.
  EXPECT_NEAR(tasklet_imbalance(stats), 1.5, 1e-9);

  Dpu b;
  b.load(program_with([](TaskletCtx& ctx) { ctx.charge_alu(500); }));
  EXPECT_NEAR(tasklet_imbalance(b.launch(8, OptLevel::O3)), 1.0, 1e-9);
}

TEST(Report, PrintContainsKeySections) {
  Dpu d;
  d.load(program_with([](TaskletCtx& ctx) {
    (void)ctx.fadd(1.0f, 2.0f);
    ctx.charge_alu(50);
  }));
  const auto stats = d.launch(2, OptLevel::O0);
  std::ostringstream os;
  print_report(os, stats);
  const std::string s = os.str();
  EXPECT_NE(s.find("cycles:"), std::string::npos);
  EXPECT_NE(s.find("bound:"), std::string::npos);
  EXPECT_NE(s.find("[ 0]"), std::string::npos);
  EXPECT_NE(s.find("__addsf3"), std::string::npos);
}

TEST(Report, BoundNamesPrintable) {
  EXPECT_STREQ(cycle_bound_name(CycleBound::Issue),
               "issue-bound (pipeline full)");
  EXPECT_STREQ(cycle_bound_name(CycleBound::Dma),
               "DMA-bound (MRAM interface)");
  EXPECT_STREQ(cycle_bound_name(CycleBound::Latency),
               "latency-bound (under-threaded)");
}

} // namespace
} // namespace pimdnn::sim
