// Analytical PIM model tests: Algorithm 3 / Figure 5.4 pattern, Table 5.1
// column reproduction, Table 5.2 Cop values, Eq. 5.3 parallelization
// behaviour (Figure 5.5 trends), the Figure 5.6 crossover, the Table 5.3
// memory model, and the Table 5.4 catalog/throughput math.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pimmodel/catalog.hpp"
#include "pimmodel/model.hpp"
#include "pimmodel/ppim.hpp"

namespace pimdnn::pimmodel {
namespace {

TEST(Ppim, AddsWithoutCarryPatternRisesThenFalls) {
  // Figure 5.4: 0,2,4,...,plateau,...,4,2,0 for k = bits/2.
  const auto p8 = ppim_adds_pattern(8); // 16-bit operands
  EXPECT_EQ(p8, (std::vector<std::uint64_t>{0, 2, 4, 6, 6, 4, 2, 0}));
  const auto p4 = ppim_adds_pattern(4); // 8-bit operands
  EXPECT_EQ(p4, (std::vector<std::uint64_t>{0, 2, 2, 0}));
  const auto p16 = ppim_adds_pattern(16);
  EXPECT_EQ(p16.front(), 0u);
  EXPECT_EQ(p16[7], 14u); // rises by 2 to the halfway plateau
  EXPECT_EQ(p16[8], 14u);
  EXPECT_EQ(p16.back(), 0u);
}

TEST(Ppim, TotalAddsMatchStarredTable52Entries) {
  // 16-bit: 108 adds + 16 partial products = 124*; 32-bit: 952 + 64 = 1016*.
  EXPECT_EQ(ppim_total_adds(8), 108u);
  EXPECT_EQ(ppim_total_adds(16), 952u);
}

TEST(Ppim, MultCyclesTable52) {
  EXPECT_EQ(ppim_mult_cycles(4), 1u);
  EXPECT_EQ(ppim_mult_cycles(8), 6u);
  EXPECT_EQ(ppim_mult_cycles(16), 124u);
  EXPECT_EQ(ppim_mult_cycles(32), 1016u);
  EXPECT_THROW(ppim_mult_cycles(7), UsageError);
  EXPECT_THROW(ppim_mult_cycles(0), UsageError);
}

TEST(Model, Table51ColumnsAt8Bit) {
  PpimModel ppim;
  DrisaModel drisa;
  UpmemModel upmem;
  // Row 1: Dp. Row 2: CBB. Rows 4-5: scale functions. Row 6: Cop(MAC).
  EXPECT_EQ(ppim.dp(), 1u);
  EXPECT_EQ(drisa.dp(), 1u);
  EXPECT_EQ(upmem.dp(), 11u);
  EXPECT_EQ(ppim.cbb(), 1u);
  EXPECT_EQ(ppim.acc_f(8), 2u);
  EXPECT_EQ(drisa.acc_f(8), 11u);
  EXPECT_EQ(upmem.acc_f(8), 4u);
  EXPECT_EQ(ppim.mult_f(8), 6u);
  EXPECT_EQ(drisa.mult_f(8), 200u);
  EXPECT_EQ(upmem.mult_f(8), 4u);
  EXPECT_EQ(ppim.cop_mac(8), 8u);
  EXPECT_EQ(drisa.cop_mac(8), 211u);
  EXPECT_EQ(upmem.cop_mac(8), 88u);
  // Rows 7-8: PEs and frequency.
  EXPECT_EQ(ppim.pes(), 256u);
  EXPECT_EQ(drisa.pes(), 32768u);
  EXPECT_EQ(upmem.pes(), 2560u);
  EXPECT_DOUBLE_EQ(ppim.frequency_hz(), 1.25e9);
  EXPECT_DOUBLE_EQ(drisa.frequency_hz(), 1.19e8);
  EXPECT_DOUBLE_EQ(upmem.frequency_hz(), 3.5e8);
}

TEST(Model, Table51DerivedRows) {
  // Rows 10-13 for the 8-bit AlexNet workload.
  PpimModel ppim;
  DrisaModel drisa;
  UpmemModel upmem;
  // Tcomp for one MAC (row 11).
  EXPECT_NEAR(static_cast<double>(ppim.cop_mac(8)) / ppim.frequency_hz(),
              6.40e-9, 1e-11);
  EXPECT_NEAR(static_cast<double>(drisa.cop_mac(8)) / drisa.frequency_hz(),
              1.77e-6, 2e-8);
  EXPECT_NEAR(static_cast<double>(upmem.cop_mac(8)) / upmem.frequency_hz(),
              2.51e-7, 1e-9);
  // Ccomp / Tcomp for the full AlexNet (rows 12-13).
  EXPECT_NEAR(static_cast<double>(ppim.ccomp(8, kAlexnetOps)), 8.0938e7,
              8.0938e7 * 1e-3);
  EXPECT_NEAR(ppim.tcomp(ppim.cop_mac(8), kAlexnetOps), 6.48e-2, 1e-3);
  EXPECT_NEAR(drisa.tcomp(drisa.cop_mac(8), kAlexnetOps), 1.40e-1, 2e-3);
  EXPECT_NEAR(upmem.tcomp(upmem.cop_mac(8), kAlexnetOps), 2.54e-1, 2e-3);
}

TEST(Model, Table52CopMultiplication) {
  PpimModel ppim;
  DrisaModel drisa;
  UpmemModel upmem;
  EXPECT_EQ(ppim.cop_mult(4), 1u);
  EXPECT_EQ(ppim.cop_mult(8), 6u);
  EXPECT_EQ(ppim.cop_mult(16), 124u);
  EXPECT_EQ(ppim.cop_mult(32), 1016u);
  EXPECT_EQ(drisa.cop_mult(4), 110u);
  EXPECT_EQ(drisa.cop_mult(8), 200u);
  EXPECT_EQ(drisa.cop_mult(16), 380u);
  EXPECT_EQ(drisa.cop_mult(32), 740u);
  EXPECT_EQ(upmem.cop_mult(4), 44u);
  EXPECT_EQ(upmem.cop_mult(8), 44u);
  // The thesis rounds 370/570; instruction-exact values are 374/572.
  EXPECT_NEAR(static_cast<double>(upmem.cop_mult(16)), 370.0, 5.0);
  EXPECT_NEAR(static_cast<double>(upmem.cop_mult(32)), 570.0, 5.0);
}

TEST(Model, Eq57ComposedDrisaReproducesLiteratureValues) {
  // The four-building-block composition of Eq. 5.7 must land on the same
  // multiplication costs as the fitted table (within a few cycles),
  // validating the thesis' claim that Eq. 5.6 collapses to the simpler
  // forms when parameters are plugged in.
  DrisaModel drisa;
  for (unsigned bits : {4u, 8u, 16u, 32u}) {
    const auto composed = drisa_mult_composed(bits);
    const auto table = drisa.mult_f(bits);
    EXPECT_NEAR(static_cast<double>(composed), static_cast<double>(table),
                5.0)
        << bits << "-bit";
  }
}

TEST(Model, CcompIsStepFunctionInTops) {
  // Figure 5.5(a-c): cycles step up each time TOPs crosses a PE multiple.
  PpimModel m;
  const auto cop = m.cop_mult(8);
  EXPECT_EQ(m.ccomp(cop, 1), m.ccomp(cop, 256));
  EXPECT_GT(m.ccomp(cop, 257), m.ccomp(cop, 256));
  EXPECT_EQ(m.ccomp(cop, 257), m.ccomp(cop, 512));
  EXPECT_EQ(m.ccomp(cop, 512), 2 * m.ccomp(cop, 256));
}

TEST(Model, CcompDropsSteeplyThenLogarithmicallyInPes) {
  // Figure 5.5(d-f): a steep drop when parallelism first appears, then a
  // slow decay. Model the PE sweep by scaling a pPIM-like architecture.
  const std::uint64_t tops = 100000;
  const std::uint64_t cop = 6;
  auto cycles = [&](std::uint64_t pes) {
    return cop * ((tops + pes - 1) / pes);
  };
  EXPECT_EQ(cycles(1), cop * tops);
  EXPECT_NEAR(static_cast<double>(cycles(2)),
              static_cast<double>(cycles(1)) / 2.0,
              static_cast<double>(cop));
  const double drop_1_to_16 =
      static_cast<double>(cycles(1)) / static_cast<double>(cycles(16));
  const double drop_16_to_256 =
      static_cast<double>(cycles(16)) / static_cast<double>(cycles(256));
  EXPECT_NEAR(drop_1_to_16, 16.0, 0.1);
  EXPECT_NEAR(drop_16_to_256, 16.0, 0.2);
  // Monotone non-increasing throughout.
  std::uint64_t prev = cycles(1);
  for (std::uint64_t p = 2; p <= 4096; p *= 2) {
    EXPECT_LE(cycles(p), prev);
    prev = cycles(p);
  }
}

TEST(Model, Figure56CrossoverLowPrecisionPpimWinsHighPrecisionUpmem) {
  // "pPIM is best for both 8-bit and 16-bit multiplication but UPMEM does
  // the best for 32-bit" at PEs=2560, TOPs=100000.
  const std::uint64_t tops = 100000;
  const std::uint64_t pes = 2560;
  auto cycles = [&](const PimModel& m, unsigned bits) {
    return m.cop_mult(bits) * ((tops + pes - 1) / pes);
  };
  PpimModel ppim;
  DrisaModel drisa;
  UpmemModel upmem;
  for (unsigned bits : {8u, 16u}) {
    EXPECT_LT(cycles(ppim, bits), cycles(drisa, bits)) << bits;
    EXPECT_LT(cycles(ppim, bits), cycles(upmem, bits)) << bits;
  }
  EXPECT_LT(cycles(upmem, 32), cycles(ppim, 32));
  EXPECT_LT(cycles(upmem, 32), cycles(drisa, 32));
}

TEST(Model, Table53MemoryModel) {
  PpimModel ppim;
  DrisaModel drisa;
  UpmemModel upmem;
  // OPs per PE (row 6).
  EXPECT_EQ(ppim.sizebuf_bits() / 16, 16u);
  EXPECT_EQ(drisa.sizebuf_bits() / 16, 65536u);
  EXPECT_EQ(upmem.sizebuf_bits() / 16, 32000u);
  // Local ops (row 7).
  EXPECT_EQ(ppim.local_ops(8), 4096u);
  EXPECT_EQ(drisa.local_ops(8), 2147483648u);
  EXPECT_EQ(upmem.local_ops(8), 81920000u);
  // Tmem (row 8).
  EXPECT_NEAR(ppim.tmem(kAlexnetOps, 8), 4.24e-3, 2e-5);
  EXPECT_NEAR(drisa.tmem(kAlexnetOps, 8), 1.80e-7, 1e-9);
  EXPECT_NEAR(upmem.tmem(kAlexnetOps, 8), 3.07e-3, 1e-5);
}

TEST(Model, Section531TotalTimes) {
  // "The total time for pPIM is 6.90E-02 s; DRISA 1.40E-01 s; UPMEM
  // 2.57E-01 s."
  PpimModel ppim;
  DrisaModel drisa;
  UpmemModel upmem;
  EXPECT_NEAR(ppim.ttot(kAlexnetOps, 8), 6.90e-2, 1e-3);
  EXPECT_NEAR(drisa.ttot(kAlexnetOps, 8), 1.40e-1, 2e-3);
  EXPECT_NEAR(upmem.ttot(kAlexnetOps, 8), 2.57e-1, 2e-3);
}

TEST(Model, StandardModelsFactory) {
  const auto models = standard_models();
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0]->name(), "pPIM");
  EXPECT_EQ(models[1]->name(), "DRISA");
  EXPECT_EQ(models[2]->name(), "UPMEM");
}

TEST(Catalog, Table54SevenDevices) {
  const auto devices = table54_catalog();
  ASSERT_EQ(devices.size(), 7u);
  EXPECT_EQ(devices[0].name, "UPMEM");
  EXPECT_EQ(devices[4].name, "SCOPE-Vanilla");
  // Power/area rows.
  EXPECT_DOUBLE_EQ(devices[0].power_w_chip, 0.96);
  EXPECT_DOUBLE_EQ(devices[0].area_mm2_chip, 30.0);
  EXPECT_DOUBLE_EQ(devices[1].power_w_chip, 3.5);
  EXPECT_DOUBLE_EQ(devices[4].area_mm2_chip, 273.0);
}

TEST(Catalog, UpmemThroughputUsesEngagedDpus) {
  // Table 5.4: eBNN 5.63e3 frames/s-W and 1.80e2 frames/s-mm^2 follow from
  // one DPU's 120 mW / 3.75 mm^2 at the measured 1.48 ms latency.
  const auto devices = table54_catalog();
  const auto& upmem = devices[0];
  const auto e = throughput(upmem.ebnn_latency, upmem.ebnn_power_w,
                            upmem.ebnn_area_mm2);
  EXPECT_NEAR(e.frames_per_s_watt, 5.63e3, 5.63e3 * 0.01);
  EXPECT_NEAR(e.frames_per_s_mm2, 1.80e2, 1.80e2 * 0.01);
  const auto y = throughput(upmem.yolo_latency, upmem.yolo_power_w,
                            upmem.yolo_area_mm2);
  EXPECT_NEAR(y.frames_per_s_watt, 1.25e-4, 1.25e-4 * 0.02);
}

TEST(Catalog, Figure57Orderings) {
  // DRISA is the poorest of the analytical models on both metrics; pPIM
  // and LAcc lead frames/W; SCOPE leads frames/mm^2 (thesis §5.4.1).
  const auto devices = table54_catalog();
  auto find = [&](const std::string& n) -> const PimDevice& {
    for (const auto& d : devices) {
      if (d.name == n) return d;
    }
    throw UsageError("missing device " + n);
  };
  auto ew = [&](const PimDevice& d) {
    return throughput(d.ebnn_latency, d.ebnn_power_w, d.ebnn_area_mm2)
        .frames_per_s_watt;
  };
  auto ea = [&](const PimDevice& d) {
    return throughput(d.ebnn_latency, d.ebnn_power_w, d.ebnn_area_mm2)
        .frames_per_s_mm2;
  };
  EXPECT_GT(ew(find("pPIM")), ew(find("DRISA-3T1C")));
  EXPECT_GT(ew(find("LACC")), ew(find("DRISA-3T1C")));
  EXPECT_GT(ea(find("SCOPE-Vanilla")), ea(find("pPIM")));
  EXPECT_GT(ea(find("SCOPE-Vanilla")), ea(find("DRISA-3T1C")));
  // UPMEM's measured latencies leave it far behind the analytical models.
  EXPECT_LT(ew(find("UPMEM")), ew(find("pPIM")));
}

TEST(Catalog, SimulatedUpmemLatenciesSubstitute) {
  const auto devices = table54_catalog(2.0e-3, 50.0);
  EXPECT_DOUBLE_EQ(devices[0].ebnn_latency, 2.0e-3);
  EXPECT_DOUBLE_EQ(devices[0].yolo_latency, 50.0);
  EXPECT_DOUBLE_EQ(devices[1].ebnn_latency, 3.8e-7); // others untouched
}

TEST(Catalog, ThroughputValidatesInputs) {
  EXPECT_THROW(throughput(0.0, 1.0, 1.0), UsageError);
  EXPECT_THROW(throughput(1.0, -1.0, 1.0), UsageError);
}

class ModelBitsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ModelBitsSweep, CopGrowsWithPrecisionWithinEachModel) {
  const unsigned bits = GetParam();
  for (const auto& m : standard_models()) {
    if (bits < 32) {
      EXPECT_LE(m->cop_mult(bits), m->cop_mult(bits * 2)) << m->name();
      EXPECT_LE(m->cop_mac(bits), m->cop_mac(bits * 2)) << m->name();
    }
    EXPECT_GE(m->cop_mult(bits), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ModelBitsSweep,
                         ::testing::Values(4u, 8u, 16u, 32u));

} // namespace
} // namespace pimdnn::pimmodel
