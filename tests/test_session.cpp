// KernelSession tests: the shared offload choreography (activation-gated
// constant broadcast, resident scatter skip, padded-tail gather, per-session
// host-stat deltas) plus cold/warm parity of the pooled eBNN and deep-eBNN
// hosts — warm batches must be bit-exact while moving strictly fewer bytes.
#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "ebnn/deep.hpp"
#include "ebnn/host.hpp"
#include "ebnn/lut.hpp"
#include "ebnn/mnist_synth.hpp"
#include "ebnn/model.hpp"
#include "runtime/dpu_pool.hpp"
#include "runtime/kernel_session.hpp"

namespace pimdnn {
namespace {

using runtime::DpuPool;
using runtime::KernelSession;
using runtime::LaunchStats;
using sim::MemKind;
using sim::TaskletCtx;

// ---- a tiny echo kernel to drive the session directly ----------------------

constexpr std::uint32_t kPerDpu = 2;

/// out[i] = in[i] + consts[0] for the meta-count items of this DPU.
sim::DpuProgram echo_program() {
  sim::DpuProgram p;
  p.name = "echo";
  p.symbols = {{"meta", MemKind::Wram, 8},
               {"consts", MemKind::Wram, 8},
               {"buf", MemKind::Wram, 16 * 8},
               {"in_mram", MemKind::Mram, kPerDpu * 8},
               {"out_mram", MemKind::Mram, kPerDpu * 8}};
  p.entry = [](TaskletCtx& ctx) {
    auto meta = ctx.wram_span<std::uint64_t>("meta");
    auto consts = ctx.wram_span<std::uint64_t>("consts");
    auto buf = ctx.wram_span<std::uint64_t>("buf");
    const std::uint64_t n = meta[0];
    std::uint64_t* slot = buf.data() + ctx.id();
    const MemSize in = ctx.mram_addr("in_mram");
    const MemSize out = ctx.mram_addr("out_mram");
    for (std::uint64_t i = ctx.id(); i < n; i += ctx.n_tasklets()) {
      ctx.mram_read(slot, in + i * 8, 8);
      ctx.charge_alu(1);
      *slot += consts[0];
      ctx.mram_write(out + i * 8, slot, 8);
    }
  };
  return p;
}

/// One full echo offload through a KernelSession. Reports whether the
/// constant broadcast actually transferred and the session's LaunchStats.
std::vector<std::uint64_t> echo_once(DpuPool& pool,
                                     const std::vector<std::uint64_t>& in,
                                     std::uint64_t addend,
                                     LaunchStats* stats = nullptr,
                                     bool* const_sent = nullptr) {
  const auto n_dpus = KernelSession::dpus_for(in.size(), kPerDpu);
  KernelSession s(pool, "echo", n_dpus, echo_program);
  const bool sent = s.broadcast_const("consts", &addend, sizeof(addend));
  if (const_sent != nullptr) {
    *const_sent = sent;
  }
  s.scatter_items("in_mram", "meta", in.size(), kPerDpu, 8, 8,
                  [&](std::size_t i) { return &in[i]; });
  s.launch(2);
  std::vector<std::uint64_t> out(in.size());
  s.gather_items("out_mram", in.size(), kPerDpu, 8,
                 [&](std::size_t i, const std::uint8_t* slot) {
                   std::memcpy(&out[i], slot, 8);
                 });
  const LaunchStats st = s.finish();
  if (stats != nullptr) {
    *stats = st;
  }
  return out;
}

TEST(Session, RoundtripDiscardsPaddedTail) {
  // 5 items at 2 per DPU -> 3 DPUs, the last one half-full. The gather
  // must hand back exactly the 5 real items in order; the padded sixth
  // slot never reaches the sink.
  DpuPool pool;
  const std::vector<std::uint64_t> in{10, 20, 30, 40, 50};
  LaunchStats stats;
  const auto out = echo_once(pool, in, 7, &stats);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], in[i] + 7) << "item " << i;
  }
  // The session stamped its own host-side accounting.
  EXPECT_EQ(stats.host.program_loads, 1u);
  EXPECT_GT(stats.host.bytes_to_dpu, 0u);
  // 3 DPUs x 2 slots x 8 bytes gathered, padding included.
  EXPECT_EQ(stats.host.bytes_from_dpu, 3u * kPerDpu * 8u);
  EXPECT_GT(stats.host.host_seconds(), 0.0);
}

TEST(Session, BroadcastConstGatesOnActivation) {
  DpuPool pool;
  const std::vector<std::uint64_t> in{1, 2, 3};
  bool sent = false;

  // Cold: Fresh activation, the constant must go out.
  auto out = echo_once(pool, in, 100, nullptr, &sent);
  EXPECT_TRUE(sent);
  EXPECT_EQ(out[0], 101u);

  // Warm: Active, WRAM still holds the constant -> skipped. The stale
  // addend passed here must NOT take effect, proving the skip is real.
  out = echo_once(pool, in, 999, nullptr, &sent);
  EXPECT_FALSE(sent);
  EXPECT_EQ(out[0], 101u);

  // Activate a different program: WRAM is clobbered (Switched on return),
  // so the next echo session must re-send its constant.
  {
    auto other = [] {
      auto p = echo_program();
      p.name = "other";
      return p;
    };
    KernelSession s(pool, "other", 1, other);
    EXPECT_EQ(s.activation(), DpuPool::Activation::Fresh);
  }
  out = echo_once(pool, in, 5, nullptr, &sent);
  EXPECT_TRUE(sent);
  EXPECT_EQ(out[0], 6u);
}

TEST(Session, ScatterResidentSkipsUntilVersionBump) {
  DpuPool pool;
  auto run = [&](std::uint64_t version, const std::vector<std::uint64_t>& data,
                 bool* uploaded) {
    KernelSession s(pool, "echo", 1, echo_program);
    const std::uint64_t add = 0;
    s.broadcast_const("consts", &add, sizeof(add));
    *uploaded = s.scatter_resident(
        "payload", version, "in_mram", kPerDpu * 8,
        [&](std::uint32_t, std::uint8_t* slot) {
          std::memcpy(slot, data.data(), data.size() * 8);
        });
    const std::uint64_t n = kPerDpu;
    s.broadcast("meta", &n, sizeof(n));
    s.launch(2);
    std::vector<std::uint64_t> out(kPerDpu);
    s.gather_items("out_mram", kPerDpu, kPerDpu, 8,
                   [&](std::size_t i, const std::uint8_t* slot) {
                     std::memcpy(&out[i], slot, 8);
                   });
    s.finish();
    return out;
  };

  bool uploaded = false;
  auto out = run(1, {10, 20}, &uploaded);
  EXPECT_TRUE(uploaded);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 20}));

  // Same (tag, version): skipped; the MRAM payload from the first call is
  // still what the kernel reads.
  out = run(1, {99, 99}, &uploaded);
  EXPECT_FALSE(uploaded);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 20}));

  // Version bump: re-uploaded.
  out = run(2, {7, 8}, &uploaded);
  EXPECT_TRUE(uploaded);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{7, 8}));
}

TEST(Session, FinishReportsPerSessionDelta) {
  // Each session's stats must cover exactly its own traffic, not the
  // pool's cumulative counters.
  DpuPool pool;
  const std::vector<std::uint64_t> in{4, 5, 6, 7};
  LaunchStats cold, warm;
  echo_once(pool, in, 1, &cold);
  echo_once(pool, in, 1, &warm);

  EXPECT_EQ(cold.host.program_loads, 1u);
  EXPECT_EQ(cold.host.cached_activations, 0u);
  EXPECT_EQ(warm.host.program_loads, 0u);
  EXPECT_EQ(warm.host.cached_activations, 1u);
  // Warm skipped the constant broadcast (8 bytes to each of 2 DPUs);
  // everything else is identical.
  EXPECT_EQ(cold.host.bytes_to_dpu - warm.host.bytes_to_dpu, 2u * 8u);
  EXPECT_EQ(cold.host.bytes_from_dpu, warm.host.bytes_from_dpu);
  // The pool's cumulative ledger is the sum of both sessions.
  EXPECT_EQ(pool.host_stats().bytes_to_dpu,
            cold.host.bytes_to_dpu + warm.host.bytes_to_dpu);
  EXPECT_EQ(pool.host_stats().bytes_from_dpu,
            cold.host.bytes_from_dpu + warm.host.bytes_from_dpu);
}

// ---- pooled eBNN host: cold/warm parity ------------------------------------

namespace eb = pimdnn::ebnn;

eb::EbnnConfig small_ebnn() {
  eb::EbnnConfig cfg;
  cfg.filters = 8;
  return cfg;
}

TEST(EbnnPool, WarmBatchBitExactWithCheaperHostPath) {
  const eb::EbnnConfig cfg = small_ebnn();
  const auto w = eb::EbnnWeights::random(cfg, 99);
  eb::EbnnReference ref(cfg, w);
  const auto data = eb::make_synthetic_mnist(20, 123); // spans 2 DPUs
  eb::EbnnHost host(cfg, w, eb::BnMode::HostLut);

  const auto cold = host.run(eb::images_only(data), 16);
  const auto warm = host.run(eb::images_only(data), 16);

  // Bit-exact across batches and against the golden model.
  EXPECT_EQ(warm.predicted, cold.predicted);
  EXPECT_EQ(warm.features, cold.features);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto golden = ref.infer(data[i].pixels.data());
    EXPECT_EQ(cold.features[i], golden.feature) << "image " << i;
    EXPECT_EQ(cold.predicted[i], golden.predicted) << "image " << i;
  }

  // Cold batch loads the program; warm batch is served from the cache.
  EXPECT_EQ(cold.launch.host.program_loads, 1u);
  EXPECT_EQ(cold.launch.host.cached_activations, 0u);
  EXPECT_EQ(warm.launch.host.program_loads, 0u);
  EXPECT_EQ(warm.launch.host.cached_activations, 1u);

  // Warm re-sends only images + counts: exactly the conv weights and the
  // BN LUT drop out of the host->DPU traffic.
  EXPECT_LT(warm.launch.host.bytes_to_dpu, cold.launch.host.bytes_to_dpu);
  const auto lut = eb::build_bn_binact_lut(cfg, w.bn);
  const std::uint64_t resident_bytes =
      align_up(w.conv_bits.size() * sizeof(std::uint32_t), kXferAlign) +
      align_up(lut.table.size(), kXferAlign);
  EXPECT_EQ(cold.launch.host.bytes_to_dpu - warm.launch.host.bytes_to_dpu,
            cold.dpus_used * resident_bytes); // broadcasts count per DPU
  EXPECT_EQ(cold.launch.host.bytes_from_dpu, warm.launch.host.bytes_from_dpu);

  // The eBNN path reports real (non-zero) host overhead on every batch.
  EXPECT_GT(cold.launch.host.host_seconds(), 0.0);
  EXPECT_GT(warm.launch.host.host_seconds(), 0.0);
  EXPECT_GT(warm.launch.host.bytes_to_dpu, 0u);
}

TEST(EbnnPool, SoftFloatModeAlsoReusesResidentConstants) {
  const eb::EbnnConfig cfg = small_ebnn();
  const auto w = eb::EbnnWeights::random(cfg, 7);
  const auto data = eb::make_synthetic_mnist(10, 17);
  eb::EbnnHost host(cfg, w, eb::BnMode::SoftFloat);

  const auto cold = host.run(eb::images_only(data), 16);
  const auto warm = host.run(eb::images_only(data), 16);
  EXPECT_EQ(warm.predicted, cold.predicted);
  EXPECT_EQ(warm.features, cold.features);
  EXPECT_EQ(warm.launch.host.program_loads, 0u);
  EXPECT_LT(warm.launch.host.bytes_to_dpu, cold.launch.host.bytes_to_dpu);
}

TEST(EbnnPool, GrowingBatchRebuildsAndStaysCorrect) {
  const eb::EbnnConfig cfg = small_ebnn();
  const auto w = eb::EbnnWeights::random(cfg, 3);
  eb::EbnnReference ref(cfg, w);
  eb::EbnnHost host(cfg, w, eb::BnMode::HostLut);

  auto check = [&](const std::vector<eb::LabeledImage>& data,
                   const eb::EbnnBatchResult& r) {
    ASSERT_EQ(r.predicted.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(r.features[i], ref.infer(data[i].pixels.data()).feature)
          << "image " << i;
    }
  };

  // 8 images -> 1 DPU (cold).
  const auto d1 = eb::make_synthetic_mnist(8, 1);
  const auto r1 = host.run(eb::images_only(d1), 16);
  EXPECT_EQ(r1.dpus_used, 1u);
  check(d1, r1);

  // 40 images -> 3 DPUs: the pool must grow, which rebuilds the program
  // and re-sends the constants — results stay correct.
  const auto d2 = eb::make_synthetic_mnist(40, 2);
  const auto r2 = host.run(eb::images_only(d2), 16);
  EXPECT_EQ(r2.dpus_used, 3u);
  EXPECT_GE(r2.launch.host.program_loads, 1u);
  check(d2, r2);

  // Back to a small batch: served warm on a prefix of the grown pool.
  const auto d3 = eb::make_synthetic_mnist(16, 3);
  const auto r3 = host.run(eb::images_only(d3), 16);
  EXPECT_EQ(r3.dpus_used, 1u);
  EXPECT_EQ(r3.launch.host.program_loads, 0u);
  EXPECT_EQ(r3.launch.host.cached_activations, 1u);
  check(d3, r3);
}

// ---- pooled deep-eBNN host: cold/warm parity -------------------------------

TEST(DeepEbnnPool, WarmBatchBitExactWithCheaperHostPath) {
  eb::DeepEbnnConfig cfg;
  cfg.blocks = {{6}, {6}};
  const auto w = eb::DeepEbnnWeights::random(cfg, 11);
  eb::DeepEbnnReference ref(cfg, w);
  const auto data = eb::make_synthetic_mnist(12, 5);
  eb::DeepEbnnHost host(cfg, w);

  const auto cold = host.run(eb::images_only(data));
  const auto warm = host.run(eb::images_only(data));

  EXPECT_EQ(warm.predicted, cold.predicted);
  EXPECT_EQ(warm.features, cold.features);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto golden = ref.infer(data[i].pixels.data());
    EXPECT_EQ(cold.features[i], golden.feature) << "image " << i;
    EXPECT_EQ(cold.predicted[i], golden.predicted) << "image " << i;
  }

  // The auto mapping may carve the batch into dual-bank sub-launches:
  // the cold batch then loads the program once per bank touched, and the
  // warm batch serves every sub-launch from the cache.
  EXPECT_EQ(warm.split, cold.split);
  EXPECT_EQ(cold.launch.host.program_loads, std::min(cold.split, 2u));
  EXPECT_EQ(warm.launch.host.program_loads, 0u);
  EXPECT_EQ(warm.launch.host.cached_activations, warm.split);
  EXPECT_LT(warm.launch.host.bytes_to_dpu, cold.launch.host.bytes_to_dpu);
  EXPECT_EQ(cold.launch.host.bytes_from_dpu, warm.launch.host.bytes_from_dpu);
  EXPECT_GT(cold.launch.host.host_seconds(), 0.0);
  EXPECT_GT(warm.launch.host.host_seconds(), 0.0);

  // The host's cumulative pool ledger covers both batches.
  EXPECT_EQ(host.pool_host_stats().bytes_to_dpu,
            cold.launch.host.bytes_to_dpu + warm.launch.host.bytes_to_dpu);
}

} // namespace
} // namespace pimdnn
