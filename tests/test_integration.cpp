// Cross-module integration tests: end-to-end determinism, simulator fault
// propagation through the host runtime, capacity exhaustion, and agreement
// between independently implemented layers of the stack.
#include <gtest/gtest.h>

#include "baseline/cpu_baseline.hpp"
#include "common/error.hpp"
#include "ebnn/host.hpp"
#include "ebnn/mnist_synth.hpp"
#include "nn/layers.hpp"
#include "pimmodel/model.hpp"
#include "yolo/detect.hpp"
#include "yolo/network.hpp"

namespace pimdnn {
namespace {

using runtime::DpuSet;
using runtime::OptLevel;
using sim::MemKind;
using sim::TaskletCtx;

TEST(Integration, EndToEndRunsAreBitDeterministic) {
  // Same seeds -> identical predictions, cycles and profiles across runs.
  ebnn::EbnnConfig cfg;
  cfg.filters = 8;
  const auto w = ebnn::EbnnWeights::random(cfg, 42);
  const auto images =
      ebnn::images_only(ebnn::make_synthetic_mnist(20, 7));
  ebnn::EbnnHost host(cfg, w, ebnn::BnMode::HostLut);
  const auto a = host.run(images, 11);
  const auto b = host.run(images, 11);
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.launch.wall_cycles, b.launch.wall_cycles);
  EXPECT_EQ(a.launch.total_cycles, b.launch.total_cycles);
  EXPECT_EQ(a.launch.profile.total(), b.launch.profile.total());
}

TEST(Integration, YoloRunsAreBitDeterministic) {
  const auto defs = yolo::yolov3_lite_config(1, 1);
  const auto w = yolo::YoloWeights::random(defs, 3, 9);
  yolo::YoloRunner runner(defs, w, 3, 32, 32);
  const auto img = yolo::make_synthetic_image(3, 32, 32, 5, 2);
  const auto a = runner.run(img, yolo::ExecMode::DpuWram, 8);
  const auto b = runner.run(img, yolo::ExecMode::DpuWram, 8);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

TEST(Integration, KernelOutOfBoundsMramFaultsSurfaceToHost) {
  auto set = DpuSet::allocate(2);
  sim::DpuProgram p;
  p.name = "oob";
  p.symbols = {{"buf", MemKind::Mram, 64}, {"w", MemKind::Wram, 64}};
  p.entry = [](TaskletCtx& ctx) {
    std::uint8_t tmp[128];
    // Reads past the end of the 64 MB MRAM: a hard fault on hardware.
    ctx.mram_read(tmp, 64ull * 1024 * 1024 - 16, 128);
  };
  set.load(p);
  EXPECT_THROW(set.launch(1), OutOfBoundsError);
}

TEST(Integration, KernelWramOverrunFaults) {
  auto set = DpuSet::allocate(1);
  sim::DpuProgram p;
  p.name = "wram_oob";
  p.symbols = {{"w", MemKind::Wram, 16}};
  p.entry = [](TaskletCtx& ctx) {
    auto s = ctx.wram_span<std::uint8_t>("w");
    ctx.mram_read(s.data(), 0, 16); // fine
    (void)ctx.wram_span<std::uint64_t>("missing");
  };
  set.load(p);
  EXPECT_THROW(set.launch(1), SymbolError);
}

TEST(Integration, IramOverflowRejectedAtLoad) {
  auto set = DpuSet::allocate(1);
  sim::DpuProgram p;
  p.name = "huge_code";
  p.iram_bytes = 25 * 1024; // > 24 KB IRAM
  p.symbols = {{"w", MemKind::Wram, 8}};
  p.entry = [](TaskletCtx&) {};
  EXPECT_THROW(set.load(p), CapacityError);
}

TEST(Integration, SystemDpuBudgetEnforcedAcrossWorkloads) {
  // A GEMM wider than the machine's 2,560 DPUs cannot be mapped
  // row-per-DPU.
  std::vector<std::int16_t> a(3000 * 2, 1);
  std::vector<std::int16_t> b(2 * 4, 1);
  EXPECT_THROW(yolo::dpu_gemm(3000, 4, 2, 1, a, b,
                              yolo::GemmVariant::WramTiled, 1),
               CapacityError);
  // The §6.1 packed mapping makes it fit.
  EXPECT_NO_THROW(yolo::dpu_gemm(3000, 4, 2, 1, a, b,
                                 yolo::GemmVariant::WramTiled, 1,
                                 OptLevel::O3, sim::default_config(), 2));
}

TEST(Integration, EbnnAndYoloAgreeOnSharedPrimitives) {
  // The YOLO conv (im2col + Algorithm 2 GEMM) applied to a binarized eBNN
  // image must match a direct conv2d_q16 of the same tensors.
  const auto data = ebnn::make_synthetic_mnist(1, 5);
  std::vector<std::int16_t> input(28 * 28);
  for (int i = 0; i < 28 * 28; ++i) {
    input[static_cast<std::size_t>(i)] = data[0].pixels[i] >= 128 ? 1 : -1;
  }
  const nn::ConvGeom g{1, 28, 28, 4, 3, 1, 0};
  Rng rng(31);
  std::vector<std::int16_t> weights(static_cast<std::size_t>(4) * 9);
  for (auto& v : weights) {
    v = static_cast<std::int16_t>(rng.sign());
  }
  std::vector<std::int16_t> direct(static_cast<std::size_t>(4) *
                                   g.gemm_n());
  nn::conv2d_q16(g, input, weights, 32, direct); // alpha 32 -> /32 = x1

  std::vector<std::int16_t> cols(static_cast<std::size_t>(g.gemm_k()) *
                                 g.gemm_n());
  nn::im2col<std::int16_t>(g, input, cols);
  const auto r = yolo::dpu_gemm(4, g.gemm_n(), g.gemm_k(), 32, weights, cols,
                                yolo::GemmVariant::WramTiled, 4);
  EXPECT_EQ(r.c, direct);
}

TEST(Integration, ModelPredictsSimulatorOrderOfMagnitude) {
  // Chapter 5's UPMEM model and the Chapter 3/4 simulator are independent
  // implementations; on a MAC-dominated workload they should agree within
  // a small factor. One GEMM row: n*k 16-bit MACs (model: 16-bit mult+add,
  // Eq. 5.3 with 1 PE); kernel adds loop/DMA overheads.
  // 11 strips so all 11 tasklets are busy (the model assumes a full
  // pipeline).
  const int n = 11 * 256, k = 64;
  const auto sim_cycles = yolo::estimate_gemm_row_cycles(
      n, k, yolo::GemmVariant::WramTiled, 11, OptLevel::O3);
  pimmodel::UpmemModel model;
  const auto model_cycles =
      model.cop_mult(32) * static_cast<std::uint64_t>(n) * k / 11;
  const double ratio = static_cast<double>(sim_cycles) /
                       static_cast<double>(model_cycles);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 3.0);
}

TEST(Integration, CpuAndDpuPathsAgreeAtScale) {
  ebnn::EbnnConfig cfg;
  cfg.filters = 8;
  const auto w = ebnn::EbnnWeights::random(cfg, 17);
  const auto data = ebnn::make_synthetic_mnist(48, 18); // 3 DPUs
  const auto images = ebnn::images_only(data);
  const auto cpu = baseline::time_cpu_ebnn(cfg, w, images, 1);
  for (ebnn::BnMode mode :
       {ebnn::BnMode::SoftFloat, ebnn::BnMode::HostLut}) {
    for (ebnn::ConvKernel kernel :
         {ebnn::ConvKernel::Scalar, ebnn::ConvKernel::PackedRows}) {
      ebnn::EbnnHost host(cfg, w, mode, sim::default_config(), kernel);
      const auto dpu = host.run(images, 16);
      EXPECT_EQ(dpu.predicted, cpu.predicted)
          << "mode=" << static_cast<int>(mode)
          << " kernel=" << static_cast<int>(kernel);
    }
  }
}

TEST(Integration, ProfileAccumulatesAcrossSequentialLaunches) {
  // Per-launch profiles are independent; accumulating them (as the YOLO
  // runner does across layers) must equal the sum of parts.
  const auto defs = yolo::yolov3_lite_config(1, 1);
  const auto w = yolo::YoloWeights::random(defs, 3, 23);
  yolo::YoloRunner runner(defs, w, 3, 32, 32);
  const auto img = yolo::make_synthetic_image(3, 32, 32, 5, 4);
  const auto r = runner.run(img, yolo::ExecMode::DpuWram, 4);
  Cycles layer_sum = 0;
  for (const auto& ls : r.layers) layer_sum += ls.cycles;
  EXPECT_EQ(layer_sum, r.total_cycles);
  EXPECT_GT(r.profile.occurrences(sim::Subroutine::MulSI3), 0u);
}

} // namespace
} // namespace pimdnn
