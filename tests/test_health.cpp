// Health lifecycle v2 tests: StrikeWindow decay, CircuitBreaker state
// machine on the injected logical clock, the HealthManager
// quarantine -> probation -> reintegration cycle (flaky relapse, permanent
// BadDpu), pool-level reintegration through maintain(), the MRAM scrub
// patrol repairing silent resident corruption, KernelSession watchdog
// deadlines (sync + async), the session-level breaker short-circuit, the
// PIMDNN_FAULTS parse diagnostics, and interp/fast equivalence of the
// health decision log.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sim_mode.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "runtime/dpu_pool.hpp"
#include "runtime/dpu_set.hpp"
#include "runtime/health.hpp"
#include "runtime/kernel_session.hpp"
#include "sim/fault.hpp"
#include "yolo/dpu_gemm.hpp"

namespace pimdnn {
namespace {

using runtime::CircuitBreaker;
using runtime::DpuHealth;
using runtime::DpuPool;
using runtime::HealthEvent;
using runtime::HealthManager;
using runtime::KernelSession;
using runtime::LaunchOptions;
using runtime::StrikeWindow;
using sim::FaultConfig;
using sim::FaultKind;
using sim::MemKind;
using sim::TaskletCtx;

/// Every test starts and ends with injection disabled, the interpreting
/// executor selected and metrics clean — all three are process-global.
class HealthTest : public ::testing::Test {
protected:
  void SetUp() override {
    sim::set_fault_config(FaultConfig{});
    set_default_sim_mode(SimMode::Interp);
    obs::Metrics::instance().reset();
  }
  void TearDown() override {
    sim::set_fault_config(FaultConfig{});
    set_default_sim_mode(SimMode::Interp);
    obs::Metrics::instance().reset();
  }
};

sim::DpuProgram tiny_program(const std::string& name = "tiny") {
  sim::DpuProgram p;
  p.name = name;
  p.symbols = {{"data", MemKind::Mram, 64}, {"w", MemKind::Wram, 8}};
  p.entry = [](TaskletCtx& ctx) { ctx.charge_alu(1); };
  return p;
}

std::uint64_t counter(const char* name) {
  return obs::Metrics::instance().counter(name);
}

// ---- StrikeWindow ----------------------------------------------------------

TEST_F(HealthTest, StrikeWindowDecaysStrikesOverTicks) {
  StrikeWindow w(StrikeWindow::Params{3, 10});
  w.resize(2);

  EXPECT_EQ(w.strike(0, 1, 0), 1u);
  EXPECT_EQ(w.strikes(0, 9), 1u);   // not yet a full decay interval
  EXPECT_EQ(w.strikes(0, 10), 0u);  // one interval forgives one strike
  EXPECT_EQ(w.strikes(1, 100), 0u); // untouched entry stays clean

  // A burst trips the limit before decay can help.
  EXPECT_EQ(w.strike(0, 1, 20), 1u);
  EXPECT_EQ(w.strike(0, 1, 21), 2u);
  EXPECT_EQ(w.strike(0, 1, 22), 3u);

  // set() overwrites; decay then applies from the set tick.
  w.set(0, 2, 30);
  EXPECT_EQ(w.strikes(0, 30), 2u);
  EXPECT_EQ(w.strikes(0, 49), 1u);
  EXPECT_EQ(w.strikes(0, 50), 0u);

  // resize forgets everything.
  w.resize(2);
  EXPECT_EQ(w.strikes(0, 50), 0u);
}

TEST_F(HealthTest, StrikeWindowZeroDecayDisablesForgiveness) {
  StrikeWindow w(StrikeWindow::Params{3, 0});
  w.resize(1);
  w.strike(0, 1, 0);
  EXPECT_EQ(w.strikes(0, 1'000'000), 1u);
}

// ---- CircuitBreaker --------------------------------------------------------

TEST_F(HealthTest, BreakerTripsCoolsDownAndRecloses) {
  CircuitBreaker b(CircuitBreaker::Params{2, 5});
  EXPECT_TRUE(b.allow(0));
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);

  b.on_failure(0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  b.on_failure(1); // trip_after = 2
  EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(counter("breaker.open"), 1u);

  // Open until the cool-down elapses, then one trial is allowed.
  EXPECT_FALSE(b.allow(2));
  EXPECT_FALSE(b.allow(5));
  EXPECT_TRUE(b.allow(6));
  EXPECT_EQ(b.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_EQ(counter("breaker.half_open"), 1u);

  // A half-open failure re-opens immediately, restarting the cool-down.
  b.on_failure(6);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(b.allow(10));
  EXPECT_TRUE(b.allow(12));

  // A half-open success closes and clears the failure history.
  b.on_success(12);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(b.consecutive_failures(), 0u);
  EXPECT_EQ(counter("breaker.close"), 1u);

  // Consecutive means consecutive: a success in between resets the count.
  b.on_failure(13);
  b.on_success(14);
  b.on_failure(15);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(b.consecutive_failures(), 1u);
}

// ---- HealthManager ---------------------------------------------------------

HealthManager::Params small_params() {
  HealthManager::Params p;
  p.strikes = {3, 64};
  p.probation_passes = 2;
  p.probe_interval_ticks = 4;
  return p;
}

TEST_F(HealthTest, ManagerRunsFullReintegrationCycle) {
  HealthManager hm(small_params());
  hm.resize(4);

  EXPECT_FALSE(hm.note_fault(1, FaultKind::LaunchFail));
  EXPECT_EQ(hm.state(1), DpuHealth::Suspect);
  EXPECT_FALSE(hm.note_fault(1, FaultKind::LaunchFail));
  EXPECT_TRUE(hm.note_fault(1, FaultKind::LaunchFail)); // third strike
  EXPECT_EQ(hm.state(1), DpuHealth::Quarantined);
  EXPECT_FALSE(hm.in_service(1));
  EXPECT_EQ(hm.out_of_service(), 1u);

  // Faults on an out-of-service DPU are no-ops.
  EXPECT_FALSE(hm.note_fault(1, FaultKind::LaunchFail));

  // The probe is due one interval after quarantine.
  EXPECT_EQ(hm.next_probe_due(), HealthManager::kNone);
  while (hm.next_probe_due() == HealthManager::kNone) hm.tick();
  EXPECT_EQ(hm.next_probe_due(), 1u);

  EXPECT_FALSE(hm.on_probe(1, true)); // first pass: probation
  EXPECT_EQ(hm.state(1), DpuHealth::Probation);
  while (hm.next_probe_due() == HealthManager::kNone) hm.tick();
  EXPECT_TRUE(hm.on_probe(1, true)); // second pass: reintegrated
  EXPECT_TRUE(hm.in_service(1));
  EXPECT_EQ(hm.out_of_service(), 0u);

  // Reintegration presets strikes to limit-1: the DPU is Suspect, and one
  // relapse quarantines it immediately.
  EXPECT_EQ(hm.state(1), DpuHealth::Suspect);
  EXPECT_TRUE(hm.note_fault(1, FaultKind::LaunchFail));
  EXPECT_EQ(hm.state(1), DpuHealth::Quarantined);

  const std::vector<HealthEvent::Kind> kinds = {
      HealthEvent::Kind::Quarantined, HealthEvent::Kind::Probation,
      HealthEvent::Kind::Reintegrated, HealthEvent::Kind::Quarantined};
  ASSERT_EQ(hm.events().size(), kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(hm.events()[i].kind, kinds[i]) << "event " << i;
    EXPECT_EQ(hm.events()[i].phys, 1u);
  }
}

TEST_F(HealthTest, ManagerFailedProbeRestartsProbation) {
  HealthManager hm(small_params());
  hm.resize(2);
  for (int i = 0; i < 3; ++i) hm.note_fault(0, FaultKind::LaunchHang);
  EXPECT_EQ(hm.state(0), DpuHealth::Quarantined);

  while (hm.next_probe_due() == HealthManager::kNone) hm.tick();
  EXPECT_FALSE(hm.on_probe(0, true));
  EXPECT_EQ(hm.state(0), DpuHealth::Probation);

  // A failed probe drops it back to quarantined and clears the streak.
  while (hm.next_probe_due() == HealthManager::kNone) hm.tick();
  EXPECT_FALSE(hm.on_probe(0, false));
  EXPECT_EQ(hm.state(0), DpuHealth::Quarantined);
  EXPECT_EQ(hm.events().back().kind, HealthEvent::Kind::ProbeFailed);

  // The full streak is required from scratch afterwards.
  while (hm.next_probe_due() == HealthManager::kNone) hm.tick();
  EXPECT_FALSE(hm.on_probe(0, true));
  while (hm.next_probe_due() == HealthManager::kNone) hm.tick();
  EXPECT_TRUE(hm.on_probe(0, true));
  EXPECT_TRUE(hm.in_service(0));
}

TEST_F(HealthTest, ManagerBadDpuIsPermanent) {
  HealthManager hm(small_params());
  hm.resize(2);
  EXPECT_TRUE(hm.note_fault(0, FaultKind::BadDpu)); // instant quarantine
  EXPECT_TRUE(hm.permanent(0));
  EXPECT_EQ(hm.out_of_service(), 1u);

  // Permanently-bad DPUs are never probed, no matter how long we wait.
  for (int i = 0; i < 200; ++i) {
    hm.tick();
    EXPECT_EQ(hm.next_probe_due(), HealthManager::kNone);
  }
}

// ---- pool-level reintegration ---------------------------------------------

TEST_F(HealthTest, PoolMaintainReintegratesQuarantinedDpu) {
  DpuPool pool;
  pool.reserve(4);
  const auto epoch0 = pool.health_epoch();

  for (int i = 0; i < 3; ++i)
    pool.note_fault(1, FaultKind::LaunchFail);
  EXPECT_EQ(pool.quarantined(), 1u);
  EXPECT_EQ(pool.healthy_capacity(), 3u);
  EXPECT_GT(pool.health_epoch(), epoch0);
  EXPECT_EQ(pool.set().logical_size(), 3u);
  EXPECT_EQ(obs::Metrics::instance().gauge("health.quarantined"), 1.0);

  // No fault plan is active, so canary probes pass; the patrol needs
  // probe_interval ticks between each of kProbationPasses probes.
  const auto epoch1 = pool.health_epoch();
  for (int i = 0; i < 200 && pool.quarantined() > 0; ++i) pool.maintain();

  EXPECT_EQ(pool.quarantined(), 0u);
  EXPECT_EQ(pool.healthy_capacity(), 4u);
  EXPECT_EQ(pool.set().logical_size(), 4u);
  EXPECT_EQ(pool.set().physical(1), 1u);
  EXPECT_GT(pool.health_epoch(), epoch1);
  EXPECT_EQ(counter("health.reintegrated"), 1u);
  EXPECT_GT(counter("health.probe"), 0u);
  EXPECT_EQ(obs::Metrics::instance().gauge("health.quarantined"), 0.0);
  EXPECT_EQ(pool.health().events().back().kind,
            HealthEvent::Kind::Reintegrated);

  // plan_capacity follows the recovery.
  EXPECT_EQ(pool.plan_capacity(), pool.config().total_dpus);
}

// ---- scrub patrol ----------------------------------------------------------

TEST_F(HealthTest, ScrubRepairsSilentResidentCorruption) {
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.launch_hang_rate = 1e-12; // enables the plan; never actually fires
  sim::set_fault_config(cfg);

  DpuPool pool;
  auto mk = [] { return tiny_program("scrub"); };
  auto fill = [](std::uint32_t dpu, std::uint8_t* slot) {
    for (std::size_t i = 0; i < 64; ++i)
      slot[i] = static_cast<std::uint8_t>(0x11u * (dpu + 1) + i);
  };

  {
    KernelSession s(pool, "scrub", 2, mk);
    EXPECT_TRUE(s.scatter_resident("w", 1, "data", 64, fill));
    EXPECT_TRUE(s.launch(1));
    s.finish();
  }

  // Flip one byte of logical DPU 1's resident slot behind the host's back.
  auto& dpu = pool.set().dpu(pool.set().physical(1));
  std::uint8_t byte = 0;
  dpu.host_read("data", 5, &byte, 1);
  byte ^= 0xff;
  dpu.host_write("data", 5, &byte, 1);

  {
    // Construction runs the scrub patrol before the resident-hit check, so
    // the repaired record still counts as warm.
    KernelSession s(pool, "scrub", 2, mk);
    EXPECT_FALSE(s.scatter_resident("w", 1, "data", 64, fill)); // still a hit
    EXPECT_TRUE(s.launch(1));
    s.finish();
  }

  EXPECT_GE(counter("scrub.scanned"), 2u);
  EXPECT_EQ(counter("scrub.repaired"), 1u);
  EXPECT_EQ(counter("scrub.unrepairable"), 0u);

  // The slot holds the original payload again.
  std::uint8_t got[64];
  pool.set().dpu(pool.set().physical(1)).host_read("data", 0, got, 64);
  for (std::size_t i = 0; i < 64; ++i)
    ASSERT_EQ(got[i], static_cast<std::uint8_t>(0x11u * 2 + i)) << "byte " << i;
}

// ---- watchdog deadlines ----------------------------------------------------

TEST_F(HealthTest, DeadlineCancelsHungLaunchSync) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.launch_hang_rate = 1.0;
  sim::set_fault_config(cfg); // hang_deadline_cycles stays the 10M default

  DpuPool pool;
  KernelSession s(pool, "hang", 1, [] { return tiny_program("hang"); });
  LaunchOptions o;
  o.deadline_cycles = 50'000;
  o.max_attempts = 10;
  EXPECT_FALSE(s.launch(o));
  EXPECT_TRUE(s.degraded());

  const auto st = s.finish();
  EXPECT_TRUE(st.cpu_fallback);
  EXPECT_EQ(st.wall_cycles, 0u);
  // The hang charge is capped at the remaining deadline budget: exactly the
  // deadline lands in retry_cycles, nothing in wall_cycles.
  EXPECT_EQ(st.retry_cycles, 50'000u);
  EXPECT_EQ(counter("offload.deadline.cancelled"), 1u);
}

TEST_F(HealthTest, DeadlineCancelsHungLaunchAsync) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.launch_hang_rate = 1.0;
  sim::set_fault_config(cfg);

  DpuPool pool;
  KernelSession s(pool, "hang", 1, [] { return tiny_program("hang"); });
  LaunchOptions o;
  o.deadline_cycles = 50'000;
  o.max_attempts = 10;
  auto handle = s.launch_async(o);
  ASSERT_TRUE(handle.valid());
  EXPECT_FALSE(handle.wait());
  EXPECT_FALSE(handle.wait()); // wait() is idempotent
  EXPECT_TRUE(s.degraded());

  const auto st = s.finish();
  EXPECT_EQ(st.wall_cycles, 0u);
  EXPECT_EQ(st.retry_cycles, 50'000u);
  EXPECT_EQ(counter("offload.deadline.cancelled"), 1u);
}

TEST_F(HealthTest, DeadlineAllowsRetriesThenCancelsWithinOneBackoffStep) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.launch_hang_rate = 1.0;
  cfg.hang_deadline_cycles = 1'000; // short hangs: several attempts fit
  sim::set_fault_config(cfg);

  DpuPool pool;
  pool.reserve(4); // headroom so a mid-ladder quarantine can remap, not degrade
  KernelSession s(pool, "hang", 1, [] { return tiny_program("hang"); });
  LaunchOptions o;
  o.deadline_cycles = 10'000;
  o.max_attempts = 100;
  EXPECT_FALSE(s.launch(o));

  const auto st = s.finish();
  EXPECT_GE(st.retries, 2u); // the budget really admitted several attempts
  EXPECT_EQ(st.wall_cycles, 0u);
  // Cooperative cancellation: total charge stays within the deadline plus
  // at most one exponential-backoff step.
  EXPECT_GE(st.retry_cycles, 10'000u);
  EXPECT_LE(st.retry_cycles, 10'000u + 8'192u);
  EXPECT_EQ(counter("offload.deadline.cancelled"), 1u);
}

// ---- circuit breaker at the session level ----------------------------------

TEST_F(HealthTest, BreakerShortCircuitsSessionsAndRecloses) {
  DpuPool pool;
  pool.reserve(1);
  auto mk = [] { return tiny_program(); };

  // Three consecutive exhausted ladders trip the breaker.
  for (int i = 0; i < 3; ++i) pool.breaker_result(false);
  EXPECT_EQ(pool.health().breaker().state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(pool.breaker_allow());

  // A session under an open breaker short-circuits to the CPU path without
  // feeding the breaker (the short-circuit is not a ladder outcome).
  {
    KernelSession s(pool, "tiny", 1, mk);
    EXPECT_FALSE(s.launch(1));
    EXPECT_TRUE(s.degraded());
    const auto st = s.finish();
    EXPECT_TRUE(st.cpu_fallback);
  }
  EXPECT_EQ(counter("offload.breaker.short_circuit"), 1u);
  EXPECT_EQ(pool.health().breaker().consecutive_failures(), 3u);

  // After the cool-down the breaker half-opens one trial; a successful
  // ladder closes it again.
  const auto cooldown = pool.health().params().breaker.cooldown_ticks;
  for (std::uint64_t i = 0; i <= cooldown; ++i) pool.health().tick();
  EXPECT_TRUE(pool.breaker_allow());
  EXPECT_EQ(pool.health().breaker().state(), CircuitBreaker::State::HalfOpen);
  pool.breaker_result(true);
  EXPECT_EQ(pool.health().breaker().state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(counter("breaker.open"), 1u);
  EXPECT_EQ(counter("breaker.half_open"), 1u);
  EXPECT_EQ(counter("breaker.close"), 1u);

  // With the breaker closed the same session signature launches again.
  {
    KernelSession s(pool, "tiny", 1, mk);
    EXPECT_TRUE(s.launch(1));
    s.finish();
  }
}

// ---- PIMDNN_FAULTS diagnostics ---------------------------------------------

TEST_F(HealthTest, FaultParseErrorsNameTheOffendingToken) {
  auto what = [](const std::string& spec) {
    try {
      sim::parse_fault_config(spec);
    } catch (const ConfigError& e) {
      return std::string(e.what());
    }
    return std::string("<no throw>");
  };
  EXPECT_NE(what("launch=abc").find("bad rate 'abc' for launch"),
            std::string::npos);
  EXPECT_NE(what("seed=").find("empty value for seed"), std::string::npos);
  EXPECT_NE(what("seed=xyz").find("bad number 'xyz' for seed"),
            std::string::npos);
  EXPECT_NE(what("launch").find("expected key=value, got 'launch'"),
            std::string::npos);
  EXPECT_NE(what("bogus=1").find("unknown key 'bogus'"), std::string::npos);
  EXPECT_NE(what("launch=0.1,,hang=0.2")
                .find("empty term in 'launch=0.1,,hang=0.2'"),
            std::string::npos);
}

// ---- interp/fast equivalence of health decisions ---------------------------

TEST_F(HealthTest, ExecutorsAgreeOnOutputsAndHealthDecisions) {
  struct Outcome {
    std::vector<std::vector<std::int16_t>> frames;
    std::vector<HealthEvent> events;
  };
  const int m = 8, n = 24, k = 6;
  Rng rng(1234);
  std::vector<std::int16_t> a(static_cast<std::size_t>(m) * k);
  std::vector<std::int16_t> b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-50, 50));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-50, 50));
  std::vector<std::int16_t> expect(static_cast<std::size_t>(m) * n);
  nn::gemm_q16_reference(m, n, k, 2, a, b, expect);

  auto run_mode = [&](SimMode mode) {
    set_default_sim_mode(mode);
    FaultConfig cfg;
    cfg.seed = 11;
    cfg.launch_fail_rate = 0.12;
    cfg.mram_corrupt_rate = 0.02;
    sim::set_fault_config(cfg); // resets the plan's draw ordinals
    Outcome out;
    DpuPool pool;
    for (int f = 0; f < 8; ++f) {
      auto r = yolo::dpu_gemm_pooled(pool, m, n, k, 2, a, b,
                                     yolo::GemmVariant::WramTiled, 4,
                                     runtime::OptLevel::O3, 2);
      out.frames.push_back(std::move(r.c));
    }
    out.events = pool.health().events();
    sim::set_fault_config(FaultConfig{});
    set_default_sim_mode(SimMode::Interp);
    return out;
  };

  const auto interp = run_mode(SimMode::Interp);
  const auto fast = run_mode(SimMode::Fast);

  // Self-healing keeps every frame bit-exact in both modes...
  for (const auto& f : interp.frames) EXPECT_EQ(f, expect);
  for (const auto& f : fast.frames) EXPECT_EQ(f, expect);
  // ...and the ordered health-transition log is identical: both executors
  // took the same quarantine/probation/reintegration decisions at the same
  // logical ticks.
  EXPECT_EQ(interp.events, fast.events);
}

} // namespace
} // namespace pimdnn
