// Multi-block (deep) eBNN tests: geometry validation, reference sanity,
// DPU-vs-golden bit-exactness across depths, WRAM-derived capacity, and
// determinism.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ebnn/deep.hpp"
#include "ebnn/mnist_synth.hpp"

namespace pimdnn::ebnn {
namespace {

DeepEbnnConfig depth_config(int blocks, int filters = 8) {
  DeepEbnnConfig cfg;
  cfg.blocks.clear();
  for (int b = 0; b < blocks; ++b) {
    cfg.blocks.push_back({filters});
  }
  return cfg;
}

TEST(DeepDims, GeometryChainsCorrectly) {
  const auto dims = deep_dims(depth_config(3));
  ASSERT_EQ(dims.size(), 3u);
  // 28 -> conv 26 -> pool 13; 13 -> 11 -> 5; 5 -> 3 -> 1.
  EXPECT_EQ(dims[0].in_c, 1);
  EXPECT_EQ(dims[0].out_h, 13);
  EXPECT_EQ(dims[1].in_c, 8);
  EXPECT_EQ(dims[1].in_h, 13);
  EXPECT_EQ(dims[1].out_h, 5);
  EXPECT_EQ(dims[2].in_h, 5);
  EXPECT_EQ(dims[2].out_h, 1);
  EXPECT_EQ(dims[1].taps, 8 * 9);
  EXPECT_EQ(deep_feature_bits(depth_config(3)), 8);
}

TEST(DeepDims, RejectsTooDeepNetworks) {
  // A 4th block would need a conv on a 1x1 map.
  EXPECT_THROW(deep_dims(depth_config(4)), ConfigError);
  DeepEbnnConfig empty;
  empty.blocks.clear();
  EXPECT_THROW(deep_dims(empty), ConfigError);
}

TEST(DeepWeights, ShapesFollowDims) {
  const auto cfg = depth_config(2, 6);
  const auto w = DeepEbnnWeights::random(cfg, 11);
  ASSERT_EQ(w.conv.size(), 2u);
  EXPECT_EQ(w.conv[0].size(), 6u * 1u);
  EXPECT_EQ(w.conv[1].size(), 6u * 6u);
  EXPECT_EQ(w.bn[1].channels(), 6u);
  EXPECT_EQ(w.fc.size(),
            static_cast<std::size_t>(cfg.classes) *
                static_cast<std::size_t>(deep_feature_bits(cfg)));
}

TEST(DeepReference, SingleBlockMatchesShallowModel) {
  // With one block, the deep reference must agree with the original
  // single-block golden model (independent implementations).
  EbnnConfig shallow;
  shallow.filters = 8;
  const auto sw = EbnnWeights::random(shallow, 21);

  DeepEbnnConfig dcfg = depth_config(1, 8);
  DeepEbnnWeights dw;
  dw.conv = {sw.conv_bits};
  dw.bn = {sw.bn};
  dw.fc = sw.fc;

  const EbnnReference ref_s(shallow, sw);
  const DeepEbnnReference ref_d(dcfg, dw);
  const auto data = make_synthetic_mnist(6, 22);
  for (const auto& li : data) {
    const auto a = ref_s.infer(li.pixels.data());
    const auto b = ref_d.infer(li.pixels.data());
    EXPECT_EQ(a.feature, b.feature);
    EXPECT_EQ(a.predicted, b.predicted);
  }
}

class DeepDpuAgreement : public ::testing::TestWithParam<int> {};

TEST_P(DeepDpuAgreement, DpuMatchesGoldenModel) {
  const int depth = GetParam();
  const auto cfg = depth_config(depth, 6);
  auto w = DeepEbnnWeights::random(cfg, 31 + depth);
  const DeepEbnnReference ref(cfg, w);
  const auto data = make_synthetic_mnist(10, 32);
  DeepEbnnHost host(cfg, w);
  const auto r = host.run(images_only(data));
  ASSERT_EQ(r.predicted.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto golden = ref.infer(data[i].pixels.data());
    EXPECT_EQ(r.features[i], golden.feature)
        << "depth=" << depth << " image=" << i;
    EXPECT_EQ(r.predicted[i], golden.predicted);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, DeepDpuAgreement, ::testing::Values(1, 2, 3));

TEST(DeepHost, CapacityShrinksWithWidth) {
  const auto narrow = DeepEbnnHost(depth_config(2, 4),
                                   DeepEbnnWeights::random(depth_config(2, 4),
                                                           1))
                          .images_per_dpu();
  const auto wide = DeepEbnnHost(depth_config(2, 32),
                                 DeepEbnnWeights::random(depth_config(2, 32),
                                                         1))
                        .images_per_dpu();
  EXPECT_GE(narrow, wide);
  EXPECT_GE(narrow, 1u);
  EXPECT_LE(narrow, 16u);
}

TEST(DeepHost, DeterministicAndTaskletInvariant) {
  const auto cfg = depth_config(2, 6);
  auto w = DeepEbnnWeights::random(cfg, 41);
  DeepEbnnHost host(cfg, w);
  const auto data = images_only(make_synthetic_mnist(8, 42));
  const auto a = host.run(data, 1);
  const auto b = host.run(data, std::min(4u, host.images_per_dpu()));
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_EQ(a.features, b.features);
  const auto c = host.run(data, 1);
  EXPECT_EQ(a.launch.wall_cycles, c.launch.wall_cycles);
}

TEST(DeepHost, DeeperCostsMoreCyclesPerImage) {
  const auto data = images_only(make_synthetic_mnist(4, 52));
  Cycles prev = 0;
  for (int depth : {1, 2}) {
    const auto cfg = depth_config(depth, 8);
    DeepEbnnHost host(cfg, DeepEbnnWeights::random(cfg, 51));
    const auto r = host.run(data, 1);
    EXPECT_GT(r.launch.wall_cycles, prev) << depth;
    prev = r.launch.wall_cycles;
  }
}

TEST(DeepHost, ValidatesInputs) {
  const auto cfg = depth_config(1, 4);
  DeepEbnnHost host(cfg, DeepEbnnWeights::random(cfg, 61));
  EXPECT_THROW(host.run({}), UsageError);
  EXPECT_THROW(host.run({Image(5, 0)}), UsageError);
  EXPECT_THROW(host.run({Image(28 * 28, 0)}, 17), UsageError);
}

} // namespace
} // namespace pimdnn::ebnn
