// Property tests for the bit-exact IEEE-754 soft-float library: results
// must equal the host FPU bit-for-bit across large random operand sweeps,
// including subnormals, zeros and infinities. This is what justifies the
// simulator computing DPU float math natively while charging subroutine
// cycles.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "sim/softfloat.hpp"

namespace pimdnn::sim::softfloat {
namespace {

/// Random float covering normals, subnormals, zeros, infinities.
F32 random_bits(Rng& rng) {
  // Bias toward interesting exponents occasionally.
  const auto roll = rng.next_u32() % 10;
  if (roll == 0) {
    // subnormal or zero
    return (rng.next_u32() & 0x807fffffu);
  }
  if (roll == 1) {
    // near-extreme exponents
    const std::uint32_t exp = (rng.next_u32() % 4 < 2) ? 1 : 0xfe;
    return (rng.next_u32() & 0x807fffffu) | (exp << 23);
  }
  return rng.next_u32();
}

bool both_nan(float a, float b) { return std::isnan(a) && std::isnan(b); }

void expect_bits_equal(float expected, F32 got_bits, F32 a, F32 b,
                       const char* op) {
  const float got = from_bits(got_bits);
  if (both_nan(expected, got)) return; // NaN payloads may differ
  EXPECT_EQ(to_bits(expected), got_bits)
      << op << " a=" << std::hexfloat << from_bits(a) << " b=" << from_bits(b)
      << " expected=" << expected << " got=" << got;
}

TEST(SoftFloat, AddMatchesHardwareRandomSweep) {
  Rng rng(101);
  for (int i = 0; i < 200000; ++i) {
    const F32 a = random_bits(rng);
    const F32 b = random_bits(rng);
    if (is_nan(a) || is_nan(b)) continue;
    expect_bits_equal(from_bits(a) + from_bits(b), add(a, b), a, b, "add");
  }
}

TEST(SoftFloat, SubMatchesHardwareRandomSweep) {
  Rng rng(102);
  for (int i = 0; i < 200000; ++i) {
    const F32 a = random_bits(rng);
    const F32 b = random_bits(rng);
    if (is_nan(a) || is_nan(b)) continue;
    expect_bits_equal(from_bits(a) - from_bits(b), sub(a, b), a, b, "sub");
  }
}

TEST(SoftFloat, MulMatchesHardwareRandomSweep) {
  Rng rng(103);
  for (int i = 0; i < 200000; ++i) {
    const F32 a = random_bits(rng);
    const F32 b = random_bits(rng);
    if (is_nan(a) || is_nan(b)) continue;
    expect_bits_equal(from_bits(a) * from_bits(b), mul(a, b), a, b, "mul");
  }
}

TEST(SoftFloat, DivMatchesHardwareRandomSweep) {
  Rng rng(104);
  for (int i = 0; i < 200000; ++i) {
    const F32 a = random_bits(rng);
    const F32 b = random_bits(rng);
    if (is_nan(a) || is_nan(b)) continue;
    expect_bits_equal(from_bits(a) / from_bits(b), div(a, b), a, b, "div");
  }
}

TEST(SoftFloat, AddHandlesSignedZeros) {
  EXPECT_EQ(add(to_bits(0.0f), to_bits(-0.0f)), to_bits(0.0f));
  EXPECT_EQ(add(to_bits(-0.0f), to_bits(-0.0f)), to_bits(-0.0f));
  EXPECT_EQ(add(to_bits(0.0f), to_bits(0.0f)), to_bits(0.0f));
  // Exact cancellation of finite values gives +0 in round-to-nearest.
  EXPECT_EQ(add(to_bits(1.5f), to_bits(-1.5f)), to_bits(0.0f));
}

TEST(SoftFloat, InfinityArithmetic) {
  const F32 inf = to_bits(INFINITY);
  const F32 ninf = to_bits(-INFINITY);
  EXPECT_EQ(add(inf, to_bits(1.0f)), inf);
  EXPECT_TRUE(is_nan(add(inf, ninf)));
  EXPECT_EQ(mul(inf, to_bits(-2.0f)), ninf);
  EXPECT_TRUE(is_nan(mul(inf, to_bits(0.0f))));
  EXPECT_EQ(div(to_bits(1.0f), to_bits(0.0f)), inf);
  EXPECT_EQ(div(to_bits(-1.0f), to_bits(0.0f)), ninf);
  EXPECT_TRUE(is_nan(div(to_bits(0.0f), to_bits(0.0f))));
  EXPECT_TRUE(is_nan(div(inf, inf)));
  EXPECT_EQ(div(to_bits(1.0f), inf), to_bits(0.0f));
}

TEST(SoftFloat, OverflowRoundsToInfinity) {
  const float big = 3.0e38f;
  expect_bits_equal(big + big, add(to_bits(big), to_bits(big)), to_bits(big),
                    to_bits(big), "add-overflow");
  expect_bits_equal(big * 10.0f, mul(to_bits(big), to_bits(10.0f)),
                    to_bits(big), to_bits(10.0f), "mul-overflow");
}

TEST(SoftFloat, UnderflowProducesSubnormals) {
  const float tiny = 1.0e-38f;
  expect_bits_equal(tiny / 16.0f, div(to_bits(tiny), to_bits(16.0f)),
                    to_bits(tiny), to_bits(16.0f), "div-subnormal");
  expect_bits_equal(tiny * 0.001f, mul(to_bits(tiny), to_bits(0.001f)),
                    to_bits(tiny), to_bits(0.001f), "mul-subnormal");
}

TEST(SoftFloat, ComparisonsMatchHardware) {
  Rng rng(105);
  for (int i = 0; i < 100000; ++i) {
    const F32 a = random_bits(rng);
    const F32 b = random_bits(rng);
    const float fa = from_bits(a);
    const float fb = from_bits(b);
    EXPECT_EQ(lt(a, b), fa < fb) << fa << " " << fb;
    EXPECT_EQ(le(a, b), fa <= fb) << fa << " " << fb;
    EXPECT_EQ(eq(a, b), fa == fb) << fa << " " << fb;
  }
}

TEST(SoftFloat, ComparisonTreatsZerosEqual) {
  EXPECT_TRUE(eq(to_bits(0.0f), to_bits(-0.0f)));
  EXPECT_FALSE(lt(to_bits(-0.0f), to_bits(0.0f)));
  EXPECT_TRUE(le(to_bits(-0.0f), to_bits(0.0f)));
}

TEST(SoftFloat, NanIsUnordered) {
  const F32 nan = kQuietNan;
  EXPECT_FALSE(lt(nan, to_bits(1.0f)));
  EXPECT_FALSE(le(nan, nan));
  EXPECT_FALSE(eq(nan, nan));
}

TEST(SoftFloat, FromI32MatchesHardwareExhaustiveSmall) {
  for (std::int32_t v = -70000; v <= 70000; v += 7) {
    expect_bits_equal(static_cast<float>(v), from_i32(v), 0, 0, "i2f");
  }
}

TEST(SoftFloat, FromI32MatchesHardwareRandom) {
  Rng rng(106);
  for (int i = 0; i < 100000; ++i) {
    const auto v = static_cast<std::int32_t>(rng.next_u32());
    expect_bits_equal(static_cast<float>(v), from_i32(v), 0, 0, "i2f-rand");
  }
  expect_bits_equal(static_cast<float>(INT32_MIN), from_i32(INT32_MIN), 0, 0,
                    "i2f-min");
  expect_bits_equal(static_cast<float>(INT32_MAX), from_i32(INT32_MAX), 0, 0,
                    "i2f-max");
}

TEST(SoftFloat, ToI32TruncatesTowardZero) {
  EXPECT_EQ(to_i32(to_bits(1.9f)), 1);
  EXPECT_EQ(to_i32(to_bits(-1.9f)), -1);
  EXPECT_EQ(to_i32(to_bits(0.99f)), 0);
  EXPECT_EQ(to_i32(to_bits(-0.99f)), 0);
  EXPECT_EQ(to_i32(to_bits(123456.0f)), 123456);
}

TEST(SoftFloat, ToI32SaturatesAndHandlesEdges) {
  EXPECT_EQ(to_i32(to_bits(3.0e9f)), INT32_MAX);
  EXPECT_EQ(to_i32(to_bits(-3.0e9f)), INT32_MIN);
  EXPECT_EQ(to_i32(to_bits(-2147483648.0f)), INT32_MIN);
  EXPECT_EQ(to_i32(kQuietNan), 0);
  EXPECT_EQ(to_i32(to_bits(INFINITY)), INT32_MAX);
  EXPECT_EQ(to_i32(to_bits(-INFINITY)), INT32_MIN);
}

TEST(SoftFloat, ToI32MatchesHardwareInRange) {
  Rng rng(107);
  for (int i = 0; i < 100000; ++i) {
    const float f = static_cast<float>(rng.uniform(-2.0e9, 2.0e9));
    EXPECT_EQ(to_i32(to_bits(f)), static_cast<std::int32_t>(f)) << f;
  }
}

TEST(SoftFloat, BnChainMatchesNativeFloat) {
  // The exact operation sequence of the eBNN BN-BinAct block must agree
  // with native float evaluation for every possible conv-pool input.
  Rng rng(108);
  for (int trial = 0; trial < 1000; ++trial) {
    const float w0 = static_cast<float>(rng.uniform(-1, 1));
    const float w1 = static_cast<float>(rng.uniform(-2, 2));
    const float w2 =
        static_cast<float>(rng.uniform(0.5, 2.5)) * (rng.sign() > 0 ? 1 : -1);
    const float w3 = static_cast<float>(rng.uniform(0.25, 1.5));
    const float w4 = static_cast<float>(rng.uniform(-1, 1));
    for (int x = -9; x <= 9; ++x) {
      const float native = ((static_cast<float>(x) + w0 - w1) / w2) * w3 + w4;
      F32 t = from_i32(x);
      t = add(t, to_bits(w0));
      t = sub(t, to_bits(w1));
      t = div(t, to_bits(w2));
      t = mul(t, to_bits(w3));
      t = add(t, to_bits(w4));
      EXPECT_EQ(to_bits(native), t);
      EXPECT_EQ(native >= 0.0f, !lt(t, to_bits(0.0f)));
    }
  }
}

} // namespace
} // namespace pimdnn::sim::softfloat
