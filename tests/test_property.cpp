// Randomized property sweeps across the whole stack. Each test draws many
// random instances from a seeded generator, so the suite is deterministic
// but covers a far wider parameter space than the directed unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/offloader.hpp"
#include "ebnn/host.hpp"
#include "ebnn/mnist_synth.hpp"
#include "nn/gemm.hpp"
#include "sim/dpu.hpp"
#include "sim/softfloat.hpp"
#include "yolo/dpu_gemm.hpp"

namespace pimdnn {
namespace {

using runtime::OptLevel;

TEST(Property, DpuGemmMatchesReferenceOnRandomDims) {
  Rng rng(9001);
  for (int trial = 0; trial < 40; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 6));
    const int n = static_cast<int>(rng.uniform_int(1, 700));
    const int k = static_cast<int>(rng.uniform_int(1, 40));
    const auto alpha = static_cast<std::int16_t>(rng.uniform_int(-8, 8));
    const auto tasklets =
        static_cast<std::uint32_t>(rng.uniform_int(1, 16));
    const auto variant = (rng.next_u32() & 1) != 0
                             ? yolo::GemmVariant::WramTiled
                             : yolo::GemmVariant::MramResident;
    const int rows = static_cast<int>(rng.uniform_int(1, 3));

    std::vector<std::int16_t> a(static_cast<std::size_t>(m) * k);
    std::vector<std::int16_t> b(static_cast<std::size_t>(k) * n);
    for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-99, 99));
    for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-99, 99));
    std::vector<std::int16_t> expect(static_cast<std::size_t>(m) * n);
    nn::gemm_q16_reference(m, n, k, alpha, a, b, expect);

    const auto r =
        yolo::dpu_gemm(m, n, k, alpha, a, b, variant, tasklets,
                       OptLevel::O3, sim::default_config(), rows);
    ASSERT_EQ(r.c, expect)
        << "m=" << m << " n=" << n << " k=" << k << " alpha=" << alpha
        << " t=" << tasklets << " rows=" << rows
        << " variant=" << static_cast<int>(variant);
  }
}

TEST(Property, GemmEstimatorExactOnRandomShapes) {
  Rng rng(9002);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 1200));
    const int k = static_cast<int>(rng.uniform_int(1, 64));
    const auto tasklets =
        static_cast<std::uint32_t>(rng.uniform_int(1, 16));
    const auto opt =
        (rng.next_u32() & 1) != 0 ? OptLevel::O3 : OptLevel::O0;
    const auto variant = (rng.next_u32() & 1) != 0
                             ? yolo::GemmVariant::WramTiled
                             : yolo::GemmVariant::MramResident;
    std::vector<std::int16_t> a(static_cast<std::size_t>(k), 1);
    std::vector<std::int16_t> b(static_cast<std::size_t>(k) * n, 1);
    const auto r = yolo::dpu_gemm(1, n, k, 1, a, b, variant, tasklets, opt);
    ASSERT_EQ(r.stats.wall_cycles,
              yolo::estimate_gemm_row_cycles(n, k, variant, tasklets, opt))
        << "n=" << n << " k=" << k << " t=" << tasklets;
  }
}

TEST(Property, EbnnDpuMatchesGoldenAcrossConfigs) {
  Rng rng(9003);
  for (int trial = 0; trial < 10; ++trial) {
    ebnn::EbnnConfig cfg;
    cfg.img_h = cfg.img_w = static_cast<int>(rng.uniform_int(12, 34));
    cfg.filters = static_cast<int>(rng.uniform_int(2, 12));
    cfg.ksize = (rng.next_u32() & 1) != 0 ? 3 : 5;
    if (cfg.img_h <= cfg.ksize + cfg.pool) cfg.ksize = 3;
    const auto mode = (rng.next_u32() & 1) != 0 ? ebnn::BnMode::SoftFloat
                                                : ebnn::BnMode::HostLut;
    const auto kernel = cfg.ksize == 3 && (rng.next_u32() & 1) != 0
                            ? ebnn::ConvKernel::PackedRows
                            : ebnn::ConvKernel::Scalar;
    const auto w = ebnn::EbnnWeights::random(cfg, 9000 + trial);
    const ebnn::EbnnReference ref(cfg, w);

    // Random-noise images of the config's size.
    std::vector<ebnn::Image> images(
        static_cast<std::size_t>(rng.uniform_int(1, 6)));
    for (auto& img : images) {
      img.resize(static_cast<std::size_t>(cfg.img_h) * cfg.img_w);
      for (auto& px : img) {
        px = static_cast<std::uint8_t>(rng.next_u32());
      }
    }

    ebnn::EbnnHost host(cfg, w, mode, sim::default_config(), kernel);
    const auto tasklets = static_cast<std::uint32_t>(
        rng.uniform_int(1, std::min<std::int64_t>(16, images.size())));
    const auto r = host.run(images, tasklets);
    for (std::size_t i = 0; i < images.size(); ++i) {
      const auto golden = ref.infer(images[i].data());
      ASSERT_EQ(r.features[i], golden.feature)
          << "trial=" << trial << " image=" << i << " side=" << cfg.img_h
          << " filters=" << cfg.filters << " k=" << cfg.ksize;
      ASSERT_EQ(r.predicted[i], golden.predicted);
    }
  }
}

TEST(Property, OffloaderRoundTripsRandomShapes) {
  Rng rng(9004);
  for (int trial = 0; trial < 15; ++trial) {
    core::WorkloadSpec spec;
    spec.name = "prop";
    spec.item_in_bytes = static_cast<MemSize>(rng.uniform_int(1, 300));
    spec.item_out_bytes = spec.item_in_bytes;
    spec.items_per_dpu =
        static_cast<std::uint32_t>(rng.uniform_int(1, 16));
    // Identity kernel with a charged copy loop.
    core::Offloader off(spec, [n = spec.item_in_bytes](core::ItemCtx& ic) {
      for (MemSize i = 0; i < n; ++i) {
        ic.output[i] = ic.input[i];
      }
      ic.ctx.charge_alu(2 * n);
      ic.ctx.charge_loop(n);
    });
    std::vector<std::vector<std::uint8_t>> items(
        static_cast<std::size_t>(rng.uniform_int(1, 40)));
    for (auto& it : items) {
      it.resize(spec.item_in_bytes);
      for (auto& v : it) v = static_cast<std::uint8_t>(rng.next_u32());
    }
    const auto tasklets = static_cast<std::uint32_t>(
        rng.uniform_int(1, spec.items_per_dpu));
    const auto r = off.run(items, tasklets);
    ASSERT_EQ(r.outputs, items) << "trial=" << trial;
  }
}

TEST(Property, SoftFloatExponentGrid) {
  // All exponent pairs (subnormal to near-inf) with random mantissas:
  // results must equal the host FPU bitwise for every arithmetic op.
  namespace sf = sim::softfloat;
  Rng rng(9005);
  for (int ea = 0; ea <= 0xfe; ea += 7) {
    for (int eb = 0; eb <= 0xfe; eb += 7) {
      for (int rep = 0; rep < 2; ++rep) {
        const sf::F32 a = (rng.next_u32() & 0x807fffffu) |
                          (static_cast<std::uint32_t>(ea) << 23);
        const sf::F32 b = (rng.next_u32() & 0x807fffffu) |
                          (static_cast<std::uint32_t>(eb) << 23);
        const float fa = sf::from_bits(a);
        const float fb = sf::from_bits(b);
        ASSERT_EQ(sf::to_bits(fa + fb), sf::add(a, b))
            << std::hexfloat << fa << " + " << fb;
        ASSERT_EQ(sf::to_bits(fa - fb), sf::sub(a, b))
            << std::hexfloat << fa << " - " << fb;
        ASSERT_EQ(sf::to_bits(fa * fb), sf::mul(a, b))
            << std::hexfloat << fa << " * " << fb;
        ASSERT_EQ(sf::to_bits(fa / fb), sf::div(a, b))
            << std::hexfloat << fa << " / " << fb;
      }
    }
  }
}

TEST(Property, PipelineTimingInvariants) {
  // For random per-tasklet loads: cycles == max(sum_slots, sum_dma,
  // max(11*slots_t + dma_t)) and launching a superset of work never gets
  // cheaper.
  Rng rng(9006);
  for (int trial = 0; trial < 20; ++trial) {
    const auto tasklets =
        static_cast<std::uint32_t>(rng.uniform_int(1, 24));
    std::vector<std::uint64_t> work(tasklets);
    for (auto& w : work) {
      w = static_cast<std::uint64_t>(rng.uniform_int(0, 5000));
    }
    sim::Dpu d;
    sim::DpuProgram p;
    p.name = "timing";
    p.symbols = {{"m", sim::MemKind::Mram, 4096},
                 {"w", sim::MemKind::Wram, 4096}};
    p.entry = [&work](sim::TaskletCtx& ctx) {
      ctx.charge_alu(work[ctx.id()]);
      if (ctx.id() % 3 == 0) {
        auto buf = ctx.wram_span<std::uint8_t>("w");
        ctx.mram_read(buf.data(), ctx.mram_addr("m"), 512);
      }
    };
    d.load(p);
    const auto stats = d.launch(tasklets, OptLevel::O3);

    Cycles latency = 0;
    std::uint64_t slots = 0;
    Cycles dma = 0;
    for (const auto& t : stats.tasklets) {
      slots += t.slots;
      dma += t.dma_cycles;
      latency = std::max(latency,
                         static_cast<Cycles>(t.slots) * 11 + t.dma_cycles);
    }
    ASSERT_EQ(stats.cycles,
              std::max({static_cast<Cycles>(slots), dma, latency}));
  }
}

TEST(Property, QuantizedGemmScalesLinearlyWithAlphaWhenExact) {
  // For small inputs where no clamping/truncation occurs, doubling alpha
  // doubles the (pre-shift) accumulator, so outputs with alpha=32 are
  // exactly the raw dot products.
  Rng rng(9007);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 50));
    const int k = static_cast<int>(rng.uniform_int(1, 10));
    std::vector<std::int16_t> a(static_cast<std::size_t>(k));
    std::vector<std::int16_t> b(static_cast<std::size_t>(k) * n);
    for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_int(-9, 9));
    for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_int(-9, 9));
    std::vector<std::int16_t> c(static_cast<std::size_t>(n));
    nn::gemm_q16_reference(1, n, k, 32, a, b, c); // alpha=32 cancels /32
    for (int j = 0; j < n; ++j) {
      std::int32_t dot = 0;
      for (int kk = 0; kk < k; ++kk) {
        dot += a[static_cast<std::size_t>(kk)] *
               b[static_cast<std::size_t>(kk) * n + j];
      }
      ASSERT_EQ(c[static_cast<std::size_t>(j)], dot);
    }
  }
}

} // namespace
} // namespace pimdnn
