// Unit tests for src/common: fixed-point helpers, RNG determinism, stats,
// byte/alignment utilities and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace pimdnn {
namespace {

TEST(FixedPoint, ClampTo) {
  EXPECT_EQ(clamp_to(5, 0, 10), 5);
  EXPECT_EQ(clamp_to(-5, 0, 10), 0);
  EXPECT_EQ(clamp_to(15, 0, 10), 10);
}

TEST(FixedPoint, SaturateCastNarrowsToInt16) {
  EXPECT_EQ((saturate_cast<std::int16_t, std::int64_t>(40000)), 32767);
  EXPECT_EQ((saturate_cast<std::int16_t, std::int64_t>(-40000)), -32768);
  EXPECT_EQ((saturate_cast<std::int16_t, std::int64_t>(123)), 123);
}

TEST(FixedPoint, SatAddI32Saturates) {
  EXPECT_EQ(sat_add_i32(2000000000, 2000000000), 2147483647);
  EXPECT_EQ(sat_add_i32(-2000000000, -2000000000), -2147483648);
  EXPECT_EQ(sat_add_i32(1, 2), 3);
}

TEST(FixedPoint, SatMulI32Saturates) {
  EXPECT_EQ(sat_mul_i32(100000, 100000), 2147483647);
  EXPECT_EQ(sat_mul_i32(-100000, 100000), -2147483648);
  EXPECT_EQ(sat_mul_i32(7, -6), -42);
}

TEST(FixedPoint, SaturateShiftDownMatchesAlgorithm2) {
  // Thesis Algorithm 2 line 9: C = absolutemax(ctmp / 32, 32767).
  EXPECT_EQ(saturate_shift_down(64, 5, 32767), 2);
  EXPECT_EQ(saturate_shift_down(-64, 5, 32767), -2);
  EXPECT_EQ(saturate_shift_down(2000000, 5, 32767), 32767);
  EXPECT_EQ(saturate_shift_down(-2000000, 5, 32767), -32767);
  // C-style truncating division for negatives: -33/32 == -1.
  EXPECT_EQ(saturate_shift_down(-33, 5, 32767), -1);
}

TEST(FixedPoint, QuantizerRoundTripIsCloseToIdentity) {
  QuantizerI16 q{8};
  for (double x : {-12.5, -0.3, 0.0, 0.9921875, 55.125}) {
    const auto qi = q.quantize(x);
    EXPECT_NEAR(q.dequantize(qi), x, 1.0 / 256.0 + 1e-9) << x;
  }
}

TEST(FixedPoint, QuantizerSaturates) {
  QuantizerI8 q{5};
  EXPECT_EQ(q.quantize(1000.0), 127);
  EXPECT_EQ(q.quantize(-1000.0), -128);
}

TEST(FixedPoint, PopcountMatchesBuiltin) {
  EXPECT_EQ(popcount32(0), 0);
  EXPECT_EQ(popcount32(0xffffffffu), 32);
  EXPECT_EQ(popcount32(0x80000001u), 2);
  EXPECT_EQ(popcount64(0xffffffffffffffffULL), 64);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, NormalHasRoughMoments) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(r.normal(5.0, 2.0));
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, SignIsBalanced) {
  Rng r(13);
  int pos = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.sign() > 0) ++pos;
  }
  EXPECT_GT(pos, 4500);
  EXPECT_LT(pos, 5500);
}

TEST(Stats, BasicAccumulation) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(Stats, MergeEqualsSingleStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, EmptyIsNan) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.percentile(0.5)));
}

TEST(Stats, PercentilesWithinSketchError) {
  // 1..1000 uniformly: the sketch (gamma = 1.02) must land within ~2%
  // relative error of the true nearest-rank value.
  RunningStats s;
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.p50(), 500.0, 500.0 * 0.025);
  EXPECT_NEAR(s.p95(), 950.0, 950.0 * 0.025);
  EXPECT_NEAR(s.p99(), 990.0, 990.0 * 0.025);
  // Extremes clamp to the exact observed min/max.
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 1000.0);
}

TEST(Stats, PercentilesHandleSignsAndZeros) {
  RunningStats s;
  for (double v : {-100.0, -10.0, 0.0, 0.0, 10.0, 100.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), -100.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  // Ranks 3 and 4 of 6 are the zeros.
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  // Rank 2 is -10: negative buckets must come back ascending.
  EXPECT_NEAR(s.percentile(0.3), -10.0, 10.0 * 0.025);
}

TEST(Stats, SingleValueAllPercentiles) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.p50(), 42.0);
  EXPECT_DOUBLE_EQ(s.p95(), 42.0);
  EXPECT_DOUBLE_EQ(s.p99(), 42.0);
}

TEST(Stats, MergePreservesPercentilesExactly) {
  // The sketch merges by bucket-count addition, so a merged accumulator
  // must report the *identical* percentile estimates as one accumulator
  // fed both streams — not merely close ones.
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 500; ++i) {
    const double v = (i % 7 == 0 ? -1.0 : 1.0) * (i * 1.7 + 1.0);
    (i % 3 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), all.percentile(q)) << "q=" << q;
  }
}

TEST(Stats, MergeIntoEmptyCopiesSketch) {
  RunningStats a;
  RunningStats b;
  for (int i = 1; i <= 100; ++i) b.add(static_cast<double>(i));
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p95(), b.p95());
  // Merging an empty accumulator changes nothing.
  const double before = a.p95();
  a.merge(RunningStats{});
  EXPECT_DOUBLE_EQ(a.p95(), before);
}

TEST(Bytes, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 8), 16u);
  EXPECT_EQ(align_up(784, 8), 784u);
}

TEST(Bytes, XferPadding) {
  EXPECT_EQ(xfer_padding(8), 0u);
  EXPECT_EQ(xfer_padding(9), 7u);
  EXPECT_EQ(xfer_padding(0), 0u);
}

TEST(Bytes, PadToXferPreservesPayloadAndZeroPads) {
  const std::uint8_t src[5] = {1, 2, 3, 4, 5};
  const auto out = pad_to_xfer(src, 5);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], src[i]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(out[i], 0);
}

TEST(Table, RejectsMismatchedRow) {
  Table t("x");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), UsageError);
}

TEST(Table, PrintsAlignedRows) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"alpha", Table::num(std::uint64_t{42})});
  t.row({"b", Table::num(1.5)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, NumFormatsScientificForExtremes) {
  EXPECT_NE(Table::num(1.23e-7).find("e"), std::string::npos);
  EXPECT_NE(Table::num(4.56e9).find("e"), std::string::npos);
  EXPECT_EQ(Table::num(3.5).find("e"), std::string::npos);
}

TEST(Error, RequireThrowsUsageError) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "nope"), UsageError);
}

} // namespace
} // namespace pimdnn
